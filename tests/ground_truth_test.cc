/**
 * @file
 * Ground-truth RowHammer model tests: neighbor damage accounting,
 * refresh clearing at every granularity, window scoping, and violation
 * detection.
 */

#include <gtest/gtest.h>

#include "src/common/rng.hh"
#include "src/rh/ground_truth.hh"
#include "src/rh/ground_truth_dense.hh"

namespace dapper {
namespace {

SysConfig
smallCfg()
{
    SysConfig cfg;
    cfg.nRH = 100;
    return cfg;
}

TEST(GroundTruth, NeighborsAccumulateDamage)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 10; ++i)
        gt.onActivation(0, 0, 0, 500);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 499), 10u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 10u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 500), 0u);
    EXPECT_EQ(gt.maxDamageEver(), 10u);
    EXPECT_EQ(gt.violations(), 0u);
}

TEST(GroundTruth, EdgeRowsDoNotWrap)
{
    GroundTruth gt(smallCfg());
    gt.onActivation(0, 0, 0, 0);
    gt.onActivation(0, 0, 0, 65535);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 1), 1u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 65534), 1u);
}

TEST(GroundTruth, VictimRefreshClearsBlastRadius)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 50; ++i) {
        gt.onActivation(0, 0, 0, 500);
        gt.onActivation(0, 0, 0, 503);
    }
    gt.onVictimRefresh(0, 0, 0, 500, 1);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 499), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 502), 50u); // Other aggressor's victim.

    gt.onVictimRefresh(0, 0, 0, 503, 2); // BR2 reaches 501..505.
    EXPECT_EQ(gt.damageOf(0, 0, 0, 502), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 504), 0u);
}

TEST(GroundTruth, ViolationDetectedAtThreshold)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 99; ++i)
        gt.onActivation(0, 1, 3, 1000);
    EXPECT_EQ(gt.violations(), 0u);
    gt.onActivation(0, 1, 3, 1000);
    EXPECT_EQ(gt.violations(), 2u); // Both neighbors crossed together.
    EXPECT_EQ(gt.firstViolation().channel, 0);
    EXPECT_EQ(gt.firstViolation().rank, 1);
    EXPECT_EQ(gt.firstViolation().bank, 3);
    EXPECT_EQ(gt.firstViolation().row, 999);
}

TEST(GroundTruth, DoubleSidedSumsOnSharedVictim)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 30; ++i) {
        gt.onActivation(0, 0, 0, 500);
        gt.onActivation(0, 0, 0, 502);
    }
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 60u); // Both sides.
}

TEST(GroundTruth, BulkRefreshClearsRank)
{
    GroundTruth gt(smallCfg());
    gt.onActivation(0, 0, 5, 100);
    gt.onActivation(0, 1, 5, 100);
    gt.onBulkRankRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 5, 101), 0u);
    EXPECT_EQ(gt.damageOf(0, 1, 5, 101), 1u); // Other rank untouched.
    gt.onBulkChannelRefresh(0);
    EXPECT_EQ(gt.damageOf(0, 1, 5, 101), 0u);
}

TEST(GroundTruth, WindowBoundaryScopesDamage)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 80; ++i)
        gt.onActivation(0, 0, 0, 500);
    gt.onWindowBoundary();
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 0u);
    for (int i = 0; i < 80; ++i)
        gt.onActivation(0, 0, 0, 500);
    // 160 total activations but never >= 100 within one window.
    EXPECT_EQ(gt.violations(), 0u);
}

TEST(GroundTruth, AutoRefreshSweepsTheWholeBank)
{
    SysConfig cfg = smallCfg();
    GroundTruth gt(cfg);
    gt.onActivation(0, 0, 0, 4); // Damages rows 3 and 5 (slice 0 covers 0-7).
    gt.onAutoRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 3), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 5), 0u);
    // 8192 slices cover all 64K rows.
    gt.onActivation(0, 0, 0, 64);
    for (int i = 0; i < 8191; ++i)
        gt.onAutoRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 63), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 65), 0u);
}

TEST(GroundTruth, ActivationCountTracked)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 7; ++i)
        gt.onActivation(0, 0, 0, 10);
    EXPECT_EQ(gt.activations(), 7u);
}

// Regression: with rowsPerBank not a multiple of the slice size, the
// truncating slice count (rowsPerBank / sliceRows) left the tail rows
// outside the auto-refresh rotation forever — phantom damage. The slice
// count must round up (last slice short) so a full rotation covers
// every row.
TEST(GroundTruth, AutoRefreshCoversTailRowsWithNonDivisibleRowCount)
{
    SysConfig cfg = smallCfg();
    cfg.rowsPerBank = 3 * 8192 + 1; // sliceRows = 3, 1 tail row.
    GroundTruth gt(cfg);
    ASSERT_EQ(gt.sliceRows(), 3);
    ASSERT_EQ(gt.sliceCount(), 8193); // ceil, not 8192.

    const int tail = cfg.rowsPerBank - 1; // Row 24576: in no full slice.
    gt.onActivation(0, 0, 0, tail - 1);
    ASSERT_EQ(gt.damageOf(0, 0, 0, tail), 1u);

    // One full rotation refreshes every row, including the short last
    // slice (the truncating count skipped it and wrapped early).
    for (int i = 0; i < gt.sliceCount(); ++i)
        gt.onAutoRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 0, tail), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, tail - 2), 0u);
    for (int row = 0; row < cfg.rowsPerBank; ++row)
        ASSERT_EQ(gt.damageOf(0, 0, 0, row), 0u) << "row " << row;
}

// Differential: the epoch-stamped model must be observation-equivalent
// to the dense reference (ground_truth_dense.hh) under randomized
// interleavings of every event type, including a non-divisible row
// count that exercises the short last slice.
TEST(GroundTruth, MatchesDenseReferenceUnderRandomInterleavings)
{
    SysConfig cfg;
    cfg.nRH = 40;
    cfg.channels = 2;
    cfg.ranksPerChannel = 2;
    cfg.bankGroups = 2;
    cfg.banksPerGroup = 2;
    const int rowCounts[] = {4096, 3 * 8192 + 1};

    for (const int rows : rowCounts) {
        cfg.rowsPerBank = rows;
        GroundTruth epoch(cfg);
        DenseGroundTruth dense(cfg);
        ASSERT_EQ(epoch.sliceRows(), dense.sliceRows());
        ASSERT_EQ(epoch.sliceCount(), dense.sliceCount());

        Rng rng(0xd1fful + static_cast<unsigned>(rows));
        // A few hot aggressors per bank drive damage toward nRH; the
        // rest is background noise across the whole bank.
        const int banks = cfg.banksPerRank();
        auto randomRow = [&]() {
            if (rng.chance(0.7))
                return 100 + static_cast<int>(rng.below(8)) * 7;
            return static_cast<int>(rng.below(
                static_cast<std::uint64_t>(rows)));
        };

        for (int op = 0; op < 60000; ++op) {
            const int c = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(cfg.channels)));
            const int r = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(cfg.ranksPerChannel)));
            const int b = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(banks)));
            const double dice = rng.uniform();
            if (dice < 0.80) {
                const int row = randomRow();
                epoch.onActivation(c, r, b, row);
                dense.onActivation(c, r, b, row);
            } else if (dice < 0.85) {
                const int row = randomRow();
                const int br = 1 + static_cast<int>(rng.below(2));
                epoch.onVictimRefresh(c, r, b, row, br);
                dense.onVictimRefresh(c, r, b, row, br);
            } else if (dice < 0.97) {
                epoch.onAutoRefresh(c, r);
                dense.onAutoRefresh(c, r);
            } else if (dice < 0.98) {
                epoch.onBulkRankRefresh(c, r);
                dense.onBulkRankRefresh(c, r);
            } else if (dice < 0.99) {
                epoch.onBulkChannelRefresh(c);
                dense.onBulkChannelRefresh(c);
            } else {
                epoch.onWindowBoundary();
                dense.onWindowBoundary();
            }

            if (op % 977 == 0) {
                ASSERT_EQ(epoch.violations(), dense.violations())
                    << "op " << op;
                ASSERT_EQ(epoch.maxDamageEver(), dense.maxDamageEver())
                    << "op " << op;
                for (int probe = 0; probe < 32; ++probe) {
                    const int pr = randomRow();
                    ASSERT_EQ(epoch.damageOf(c, r, b, pr),
                              dense.damageOf(c, r, b, pr))
                        << "op " << op << " row " << pr;
                }
            }
        }

        // Full-state sweep at the end.
        EXPECT_EQ(epoch.activations(), dense.activations());
        EXPECT_EQ(epoch.violations(), dense.violations());
        EXPECT_EQ(epoch.maxDamageEver(), dense.maxDamageEver());
        EXPECT_EQ(epoch.firstViolation().channel,
                  dense.firstViolation().channel);
        EXPECT_EQ(epoch.firstViolation().rank,
                  dense.firstViolation().rank);
        EXPECT_EQ(epoch.firstViolation().bank,
                  dense.firstViolation().bank);
        EXPECT_EQ(epoch.firstViolation().row, dense.firstViolation().row);
        for (int c = 0; c < cfg.channels; ++c)
            for (int r = 0; r < cfg.ranksPerChannel; ++r)
                for (int b = 0; b < banks; ++b)
                    for (int row = 0; row < rows; ++row)
                        ASSERT_EQ(epoch.damageOf(c, r, b, row),
                                  dense.damageOf(c, r, b, row))
                            << c << "/" << r << "/" << b << "/" << row;
    }
}

} // namespace
} // namespace dapper
