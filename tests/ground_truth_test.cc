/**
 * @file
 * Ground-truth RowHammer model tests: neighbor damage accounting,
 * refresh clearing at every granularity, window scoping, and violation
 * detection.
 */

#include <gtest/gtest.h>

#include "src/rh/ground_truth.hh"

namespace dapper {
namespace {

SysConfig
smallCfg()
{
    SysConfig cfg;
    cfg.nRH = 100;
    return cfg;
}

TEST(GroundTruth, NeighborsAccumulateDamage)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 10; ++i)
        gt.onActivation(0, 0, 0, 500);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 499), 10u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 10u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 500), 0u);
    EXPECT_EQ(gt.maxDamageEver(), 10u);
    EXPECT_EQ(gt.violations(), 0u);
}

TEST(GroundTruth, EdgeRowsDoNotWrap)
{
    GroundTruth gt(smallCfg());
    gt.onActivation(0, 0, 0, 0);
    gt.onActivation(0, 0, 0, 65535);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 1), 1u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 65534), 1u);
}

TEST(GroundTruth, VictimRefreshClearsBlastRadius)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 50; ++i) {
        gt.onActivation(0, 0, 0, 500);
        gt.onActivation(0, 0, 0, 503);
    }
    gt.onVictimRefresh(0, 0, 0, 500, 1);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 499), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 502), 50u); // Other aggressor's victim.

    gt.onVictimRefresh(0, 0, 0, 503, 2); // BR2 reaches 501..505.
    EXPECT_EQ(gt.damageOf(0, 0, 0, 502), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 504), 0u);
}

TEST(GroundTruth, ViolationDetectedAtThreshold)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 99; ++i)
        gt.onActivation(0, 1, 3, 1000);
    EXPECT_EQ(gt.violations(), 0u);
    gt.onActivation(0, 1, 3, 1000);
    EXPECT_EQ(gt.violations(), 2u); // Both neighbors crossed together.
    EXPECT_EQ(gt.firstViolation().channel, 0);
    EXPECT_EQ(gt.firstViolation().rank, 1);
    EXPECT_EQ(gt.firstViolation().bank, 3);
    EXPECT_EQ(gt.firstViolation().row, 999);
}

TEST(GroundTruth, DoubleSidedSumsOnSharedVictim)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 30; ++i) {
        gt.onActivation(0, 0, 0, 500);
        gt.onActivation(0, 0, 0, 502);
    }
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 60u); // Both sides.
}

TEST(GroundTruth, BulkRefreshClearsRank)
{
    GroundTruth gt(smallCfg());
    gt.onActivation(0, 0, 5, 100);
    gt.onActivation(0, 1, 5, 100);
    gt.onBulkRankRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 5, 101), 0u);
    EXPECT_EQ(gt.damageOf(0, 1, 5, 101), 1u); // Other rank untouched.
    gt.onBulkChannelRefresh(0);
    EXPECT_EQ(gt.damageOf(0, 1, 5, 101), 0u);
}

TEST(GroundTruth, WindowBoundaryScopesDamage)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 80; ++i)
        gt.onActivation(0, 0, 0, 500);
    gt.onWindowBoundary();
    EXPECT_EQ(gt.damageOf(0, 0, 0, 501), 0u);
    for (int i = 0; i < 80; ++i)
        gt.onActivation(0, 0, 0, 500);
    // 160 total activations but never >= 100 within one window.
    EXPECT_EQ(gt.violations(), 0u);
}

TEST(GroundTruth, AutoRefreshSweepsTheWholeBank)
{
    SysConfig cfg = smallCfg();
    GroundTruth gt(cfg);
    gt.onActivation(0, 0, 0, 4); // Damages rows 3 and 5 (slice 0 covers 0-7).
    gt.onAutoRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 3), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 5), 0u);
    // 8192 slices cover all 64K rows.
    gt.onActivation(0, 0, 0, 64);
    for (int i = 0; i < 8191; ++i)
        gt.onAutoRefresh(0, 0);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 63), 0u);
    EXPECT_EQ(gt.damageOf(0, 0, 0, 65), 0u);
}

TEST(GroundTruth, ActivationCountTracked)
{
    GroundTruth gt(smallCfg());
    for (int i = 0; i < 7; ++i)
        gt.onActivation(0, 0, 0, 10);
    EXPECT_EQ(gt.activations(), 7u);
}

} // namespace
} // namespace dapper
