/**
 * @file
 * Scenario / ScenarioGrid / Runner tests: deterministic grid expansion
 * order, index-ordered thread-count-invariant results, per-Runner
 * baseline ownership (no sharing between Runners), and the baseline
 * cache keying on the *effective* horizon — the regression where two
 * callers with different explicit horizons collided on one memo entry.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/sim/runner.hh"

namespace dapper {
namespace {

SysConfig
fastCfg()
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    return cfg;
}

TEST(Scenario, BuilderComposesAndDefaultsAreSane)
{
    const Scenario s = Scenario()
                           .workload("ycsb-a")
                           .tracker("dapper-h")
                           .attack("refresh")
                           .baseline(Baseline::SameAttack)
                           .nRH(125)
                           .timeScale(32.0)
                           .seed(7)
                           .windows(3);
    EXPECT_EQ(s.workloadName(), "ycsb-a");
    EXPECT_EQ(s.trackerInfo().name, "dapper-h");
    EXPECT_EQ(s.attackInfo().name, "refresh");
    EXPECT_EQ(s.baselineKind(), Baseline::SameAttack);
    EXPECT_EQ(s.configRef().nRH, 125);
    EXPECT_EQ(s.configRef().seed, 7u);
    EXPECT_EQ(s.effectiveHorizon(), 3 * s.configRef().tREFW());

    const Scenario def;
    EXPECT_TRUE(def.trackerInfo().isNone());
    EXPECT_TRUE(def.attackInfo().isNone());
    EXPECT_EQ(def.baselineKind(), Baseline::Raw);
    EXPECT_EQ(def.effectiveHorizon(), 2 * def.configRef().tREFW());

    EXPECT_THROW(Scenario().tracker("bogus"), std::invalid_argument);
    EXPECT_THROW(Scenario().attack("bogus"), std::invalid_argument);
}

TEST(ScenarioGridTest, ExpansionOrderIsDeterministicFirstAxisOutermost)
{
    ScenarioGrid grid(Scenario().config(fastCfg()));
    grid.nRH({125, 500}).workloads({"429.mcf", "ycsb-a", "456.hmmer"});
    ASSERT_EQ(grid.size(), 6u);
    ASSERT_EQ(grid.axes(), 2u);
    EXPECT_EQ(grid.axisSize(0), 2u);
    EXPECT_EQ(grid.axisSize(1), 3u);

    const auto scenarios = grid.expand();
    ASSERT_EQ(scenarios.size(), 6u);
    const int wantNrh[] = {125, 125, 125, 500, 500, 500};
    const char *wantWl[] = {"429.mcf", "ycsb-a", "456.hmmer",
                            "429.mcf", "ycsb-a", "456.hmmer"};
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(scenarios[i].configRef().nRH, wantNrh[i]) << i;
        EXPECT_EQ(scenarios[i].workloadName(), wantWl[i]) << i;
    }
    EXPECT_EQ(grid.indexOf({1, 2}), 5u);
    EXPECT_EQ(grid.indexOf({0, 1}), 1u);
    EXPECT_EQ(scenarios[5].labelText(), "nrh=500/456.hmmer");

    // Expansion is a pure function of the grid.
    const auto again = grid.expand();
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(again[i].labelText(), scenarios[i].labelText());
}

TEST(ScenarioGridTest, CellsTouchOnlyTheirOwnFields)
{
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .tracker("dapper-h")
                          .attack("refresh")
                          .baseline(Baseline::SameAttack));
    grid.cells({
        {"benign", "", "none", Baseline::NoAttack},
        {"attacked", "", "", {}}, // Everything inherited from base.
    });
    const auto scenarios = grid.expand();
    ASSERT_EQ(scenarios.size(), 2u);
    EXPECT_EQ(scenarios[0].trackerInfo().name, "dapper-h");
    EXPECT_TRUE(scenarios[0].attackInfo().isNone());
    EXPECT_EQ(scenarios[0].baselineKind(), Baseline::NoAttack);
    EXPECT_EQ(scenarios[1].trackerInfo().name, "dapper-h");
    EXPECT_EQ(scenarios[1].attackInfo().name, "refresh");
    EXPECT_EQ(scenarios[1].baselineKind(), Baseline::SameAttack);
}

TEST(RunnerTest, GridResultsAreIndexOrderedAndThreadCountInvariant)
{
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .workload("429.mcf")
                          .horizon(150000)
                          .baseline(Baseline::NoAttack));
    grid.trackers({"none", "dapper-h", "hydra"}).nRH({250, 500});

    Runner one(1);
    Runner many(3);
    const ResultTable a = one.run(grid);
    const ResultTable b = many.run(grid);
    ASSERT_EQ(a.size(), grid.size());
    ASSERT_EQ(b.size(), grid.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).run.benignIpcMean, b.at(i).run.benignIpcMean)
            << i;
        EXPECT_EQ(a.at(i).normalized, b.at(i).normalized) << i;
        EXPECT_EQ(a.at(i).run.activations, b.at(i).run.activations) << i;
        // Row metadata mirrors the expanded scenario at that index.
        EXPECT_EQ(a.at(i).scenario.labelText(),
                  b.at(i).scenario.labelText());
    }
}

/**
 * Regression: the full exported stat dict — every component counter
 * AND every tREFI probe series point — must be identical between a
 * 1-thread and an N-thread Runner sweep. Seed-purity means the probe
 * samples (driven from System's deadline machinery) cannot observe
 * worker scheduling; a divergence here means telemetry state leaked
 * across jobs.
 */
TEST(RunnerTest, ExportedStatsAreThreadCountInvariant)
{
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .workload("429.mcf")
                          .horizon(150000));
    grid.trackers({"none", "dapper-h", "hydra"})
        .attacks({"none", "refresh"});

    Runner one(1);
    Runner many(4);
    const ResultTable a = one.run(grid);
    const ResultTable b = many.run(grid);
    ASSERT_EQ(a.size(), grid.size());
    ASSERT_EQ(b.size(), grid.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const StatDict &da = a.at(i).run.stats;
        const StatDict &db = b.at(i).run.stats;
        ASSERT_GT(da.size(), 0u) << i;
        EXPECT_TRUE(da == db) << "stat dict diverged at row " << i;
        // The probe series must exist and carry data (the horizon
        // spans many tREFIs), not just compare equal-but-empty.
        const StatSeries *series =
            da.findSeries("series.mitigationsPerTrefi");
        ASSERT_NE(series, nullptr) << i;
        EXPECT_GT(series->values.size(), 0u) << i;
        EXPECT_EQ(da.u64("series.points"), series->values.size()) << i;
    }
}

TEST(RunnerTest, RunnersOwnTheirBaselineCaches)
{
    const Scenario s = Scenario()
                           .config(fastCfg())
                           .workload("429.mcf")
                           .tracker("dapper-h")
                           .horizon(150000)
                           .baseline(Baseline::NoAttack);
    Runner a;
    const double na = a.normalized(s);
    EXPECT_EQ(a.baselineCacheSize(), 1u);

    // A second Runner starts cold — nothing leaked through globals —
    // and reproduces the same value from its own simulations.
    Runner b;
    EXPECT_EQ(b.baselineCacheSize(), 0u);
    const double nb = b.normalized(s);
    EXPECT_EQ(b.baselineCacheSize(), 1u);
    EXPECT_EQ(na, nb);
}

/**
 * Regression: the baseline key must include the *effective* horizon.
 * With the unprotected tracker and a SameAttack baseline, the
 * normalized value is exactly 1.0 by construction — unless the second
 * horizon collides with the first one's cached baseline.
 */
TEST(RunnerTest, BaselineKeyIncludesEffectiveHorizon)
{
    const Scenario base = Scenario()
                              .config(fastCfg())
                              .workload("429.mcf")
                              .attack("refresh")
                              .baseline(Baseline::SameAttack);
    Runner runner;
    const double atH1 =
        runner.normalized(Scenario(base).horizon(150000));
    const double atH2 =
        runner.normalized(Scenario(base).horizon(300000));
    EXPECT_NEAR(atH1, 1.0, 1e-12);
    EXPECT_NEAR(atH2, 1.0, 1e-12);
    // Two distinct horizons -> two distinct baseline entries.
    EXPECT_EQ(runner.baselineCacheSize(), 2u);
}

/** An explicit horizon equal to the windows-derived one is the same
 *  baseline — the key holds the effective horizon, not the raw field. */
TEST(RunnerTest, EquivalentHorizonSpellingsShareOneBaseline)
{
    const SysConfig cfg = fastCfg();
    const Scenario viaWindows = Scenario()
                                    .config(cfg)
                                    .workload("456.hmmer")
                                    .tracker("dapper-h")
                                    .windows(1)
                                    .baseline(Baseline::NoAttack);
    const Scenario viaTicks = Scenario(viaWindows).horizon(cfg.tREFW());
    ASSERT_EQ(viaWindows.effectiveHorizon(), viaTicks.effectiveHorizon());

    Runner runner;
    const double a = runner.normalized(viaWindows);
    const double b = runner.normalized(viaTicks);
    EXPECT_EQ(a, b);
    EXPECT_EQ(runner.baselineCacheSize(), 1u);
}

TEST(ResultTableTest, JsonAndCsvRenderingsContainTheRows)
{
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .workload("456.hmmer")
                          .horizon(100000)
                          .baseline(Baseline::NoAttack));
    grid.trackers({"none", "dapper-h"});
    Runner runner;
    const ResultTable table = runner.run(grid);

    auto render = [&](bool json) {
        std::FILE *tmp = std::tmpfile();
        if (json)
            table.writeJson(tmp, "experiment_test");
        else
            table.writeCsv(tmp);
        std::fseek(tmp, 0, SEEK_END);
        const long size = std::ftell(tmp);
        std::rewind(tmp);
        std::string text(static_cast<std::size_t>(size), '\0');
        const std::size_t got =
            std::fread(text.data(), 1, text.size(), tmp);
        std::fclose(tmp);
        text.resize(got);
        return text;
    };

    const std::string json = render(true);
    EXPECT_NE(json.find("\"bench\": \"experiment_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"tracker\": \"dapper-h\""), std::string::npos);
    EXPECT_NE(json.find("\"baseline\": \"no-attack\""),
              std::string::npos);

    const std::string csv = render(false);
    EXPECT_NE(csv.find("workload,tracker,attack"), std::string::npos);
    EXPECT_NE(csv.find("456.hmmer,dapper-h"), std::string::npos);
}

TEST(Scenario, WorkloadListJoinsNamesAndStaysInjective)
{
    Scenario s;
    EXPECT_EQ(s.workloadList(), std::vector<std::string>{"429.mcf"});

    s.workloads({"trace-gc", "ycsb-a", "trace-stream"});
    EXPECT_EQ(s.workloadName(), "trace-gc+ycsb-a+trace-stream");
    EXPECT_EQ(s.workloadList(),
              (std::vector<std::string>{"trace-gc", "ycsb-a",
                                        "trace-stream"}));
    // The joined name participates in the cell identity.
    EXPECT_NE(s.fingerprint().find("trace-gc+ycsb-a+trace-stream"),
              std::string::npos);

    // A one-element list is exactly workload(); workload() clears a
    // previous list.
    s.workloads({"456.hmmer"});
    EXPECT_EQ(s.workloadName(), "456.hmmer");
    EXPECT_EQ(s.workloadList(), std::vector<std::string>{"456.hmmer"});
    s.workloads({"a", "b"}).workload("429.mcf");
    EXPECT_EQ(s.workloadList(), std::vector<std::string>{"429.mcf"});

    EXPECT_THROW(s.workloads({}), std::invalid_argument);
}

TEST(ScenarioGridTest, WorkloadSetsAxisLabelsByJoinedName)
{
    ScenarioGrid grid(Scenario().config(fastCfg()).horizon(100000));
    grid.workloadSets({{"trace-gc", "trace-stencil"}, {"456.hmmer"}});
    grid.trackers({"none", "dapper-h"});
    const auto scenarios = grid.expand();
    ASSERT_EQ(scenarios.size(), 4u);
    EXPECT_EQ(scenarios[0].workloadName(), "trace-gc+trace-stencil");
    EXPECT_EQ(scenarios[0].labelText(),
              "trace-gc+trace-stencil/None");
    EXPECT_EQ(scenarios[2].workloadName(), "456.hmmer");
    EXPECT_EQ(scenarios[2].workloadList(),
              std::vector<std::string>{"456.hmmer"});
}

TEST(RunnerTest, MultiprogTraceGridIsThreadCountInvariant)
{
    // Mixed per-core trace replay through the full Runner stack: one
    // worker vs four must produce bit-identical stats in row order —
    // the trace layer adds no hidden shared state (the mmap cache is
    // content-immutable).
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .horizon(120000)
                          .baseline(Baseline::NoAttack));
    grid.workloadSets({{"trace-gc", "trace-stencil", "trace-ptrchase"},
                       {"trace-stream", "429.mcf"}});
    grid.cells({
        {"thrash", "none", "cache-thrash", {}},
        {"dapper", "dapper-h", "streaming", {}},
    });

    Runner one(1);
    Runner many(4);
    const ResultTable a = one.run(grid);
    const ResultTable b = many.run(grid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).scenario.workloadName(),
                  b.at(i).scenario.workloadName());
        EXPECT_EQ(a.at(i).normalized, b.at(i).normalized) << "row " << i;
        EXPECT_TRUE(a.at(i).run.stats == b.at(i).run.stats)
            << "row " << i << " stats diverged";
    }
}

TEST(ResultTableTest, QuarantinedRowsRenderAsExplicitGaps)
{
    Runner runner;
    const ScenarioResult real = runner.run(Scenario()
                                               .config(fastCfg())
                                               .workload("456.hmmer")
                                               .horizon(100000));
    ScenarioResult hole;
    hole.scenario = Scenario()
                        .config(fastCfg())
                        .workload("trace-gc")
                        .tracker("dapper-h")
                        .horizon(100000)
                        .label("broken-cell");
    hole.quarantined = true;
    hole.quarantineError = "watchdog timeout after 3 attempts";
    const ResultTable table({real, hole});

    auto render = [&](bool json) {
        std::FILE *tmp = std::tmpfile();
        if (json)
            table.writeJson(tmp, "quarantine_test");
        else
            table.writeCsv(tmp);
        std::fseek(tmp, 0, SEEK_END);
        const long size = std::ftell(tmp);
        std::rewind(tmp);
        std::string text(static_cast<std::size_t>(size), '\0');
        const std::size_t got =
            std::fread(text.data(), 1, text.size(), tmp);
        std::fclose(tmp);
        text.resize(got);
        return text;
    };

    const std::string json = render(true);
    // The gap row keeps its identity, carries the marker + error, and
    // nulls every metric; the healthy row is untouched.
    EXPECT_NE(json.find("\"quarantined\": true"), std::string::npos);
    EXPECT_NE(json.find("\"quarantine_error\": \"watchdog timeout "
                        "after 3 attempts\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"trace-gc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"benign_ipc\": null"), std::string::npos);
    EXPECT_NE(json.find("\"stats\": null"), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"456.hmmer\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"quarantined\": true",
                        json.find("\"quarantined\": true") + 1),
              std::string::npos)
        << "healthy rows must not carry the marker";

    const std::string csv = render(false);
    EXPECT_NE(csv.find(",--,--,--,--,--,--,--,--,--,--"),
              std::string::npos);
    EXPECT_NE(csv.find("trace-gc,dapper-h"), std::string::npos);
}

} // namespace
} // namespace dapper
