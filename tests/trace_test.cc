/**
 * @file
 * DTR trace subsystem tests: codec round-trips, the reader's
 * immutable-artifact rejection semantics (torn tails, checksum /
 * magic / version violations), WorkloadRegistry integration, the
 * seed-purity contract of trace replay (seeds move only the start
 * offset), and the differential capture-vs-live contract: a DTR file
 * captured from a synthetic generator replays bit-identically to the
 * live generator, on both engines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/journal.hh"
#include "src/sim/experiment.hh"
#include "src/trace/dtr.hh"
#include "src/trace/replay.hh"
#include "src/workload/workload_registry.hh"

namespace dapper {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "dapper_trace_test_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** A deterministic, structurally varied record stream. */
std::vector<TraceRecord>
sampleRecords(std::size_t n)
{
    std::vector<TraceRecord> out;
    out.reserve(n);
    std::uint64_t addr = 0x1000;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.bubbles = static_cast<std::uint32_t>((i * 7) % 97);
        rec.isWrite = i % 3 == 0;
        rec.bypassLlc = i % 11 == 0;
        // Deltas in both directions, including large jumps.
        if (i % 5 == 0)
            addr += 0x40;
        else if (i % 5 == 1)
            addr -= 0x1000;
        else
            addr += (i % 13) << 12;
        rec.addr = addr;
        out.push_back(rec);
    }
    return out;
}

std::string
writeSample(const std::string &path, const std::vector<TraceRecord> &recs,
            std::uint64_t baseSeed = 0, std::uint32_t perBlock = 64)
{
    TraceWriter writer(path, "sample", baseSeed, perBlock);
    for (const TraceRecord &rec : recs)
        writer.append(rec);
    writer.close();
    return path;
}

// ---------------------------------------------------------------------
// Codec primitives.
// ---------------------------------------------------------------------

TEST(DtrCodec, VarintRoundTripsEdgeValues)
{
    const std::uint64_t values[] = {0,      1,          0x7F,
                                    0x80,   0x3FFF,     0x4000,
                                    1u << 20, ~0ull >> 1, ~0ull};
    for (const std::uint64_t v : values) {
        std::string buf;
        dtrPutVarint(buf, v);
        const unsigned char *p =
            reinterpret_cast<const unsigned char *>(buf.data());
        const unsigned char *end = p + buf.size();
        EXPECT_EQ(dtrGetVarint(p, end), v);
        EXPECT_EQ(p, end) << "undershot encoding of " << v;
    }
}

TEST(DtrCodec, VarintRejectsTruncationAndOverflow)
{
    // Continuation bit set but the stream ends.
    const unsigned char truncated[] = {0x80, 0x80};
    const unsigned char *p = truncated;
    EXPECT_THROW(dtrGetVarint(p, truncated + sizeof truncated), DtrError);
    // 11 bytes = 70 payload bits: exceeds u64.
    const unsigned char tooWide[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                     0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    p = tooWide;
    EXPECT_THROW(dtrGetVarint(p, tooWide + sizeof tooWide), DtrError);
}

TEST(DtrCodec, ZigzagRoundTripsExtremes)
{
    const std::int64_t values[] = {0, 1, -1, 64, -64, INT64_MAX,
                                   INT64_MIN};
    for (const std::int64_t v : values)
        EXPECT_EQ(dtrZigzagDecode(dtrZigzagEncode(v)), v);
    // Small magnitudes encode small: the property delta encoding needs.
    EXPECT_EQ(dtrZigzagEncode(0), 0u);
    EXPECT_EQ(dtrZigzagEncode(-1), 1u);
    EXPECT_EQ(dtrZigzagEncode(1), 2u);
}

// ---------------------------------------------------------------------
// Writer / reader round trip.
// ---------------------------------------------------------------------

TEST(DtrRoundTrip, EveryFieldOfEveryRecordSurvives)
{
    const auto recs = sampleRecords(1000);
    const std::string path =
        writeSample(tempPath("roundtrip.dtr"), recs, 42, 64);

    TraceReader reader(path);
    EXPECT_EQ(reader.name(), "sample");
    EXPECT_EQ(reader.baseSeed(), 42u);
    EXPECT_EQ(reader.recordCount(), recs.size());
    // 1000 records at 64/block: 15 full blocks + a 40-record tail.
    EXPECT_EQ(reader.blockCount(), 16u);

    TraceReader::Cursor cursor(reader);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const TraceRecord got = cursor.next();
        EXPECT_EQ(got.addr, recs[i].addr) << "record " << i;
        EXPECT_EQ(got.bubbles, recs[i].bubbles) << "record " << i;
        EXPECT_EQ(got.isWrite, recs[i].isWrite) << "record " << i;
        EXPECT_EQ(got.bypassLlc, recs[i].bypassLlc) << "record " << i;
    }
    // The stream wraps: the next record is record 0 again.
    EXPECT_EQ(cursor.index(), 0u);
    EXPECT_EQ(cursor.next().addr, recs[0].addr);
    std::remove(path.c_str());
}

TEST(DtrRoundTrip, CursorSeeksToAnyIndexAndWraps)
{
    const auto recs = sampleRecords(300);
    const std::string path =
        writeSample(tempPath("seek.dtr"), recs, 0, 32);
    TraceReader reader(path);
    for (const std::uint64_t start : {0ull, 1ull, 31ull, 32ull, 33ull,
                                      299ull, 300ull, 451ull}) {
        TraceReader::Cursor cursor(reader, start);
        for (std::size_t k = 0; k < 40; ++k) {
            const std::size_t want = (start + k) % recs.size();
            EXPECT_EQ(cursor.next().addr, recs[want].addr)
                << "start " << start << " step " << k;
        }
    }
    std::remove(path.c_str());
}

TEST(DtrRoundTrip, EmptyTraceLoadsButCannotIterate)
{
    const std::string path = tempPath("empty.dtr");
    TraceWriter writer(path, "nothing", 7);
    writer.close();
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    EXPECT_EQ(reader.blockCount(), 0u);
    EXPECT_THROW(TraceReader::Cursor cursor(reader), DtrError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Rejection semantics: a DTR file loads exactly or not at all.
// ---------------------------------------------------------------------

TEST(DtrRejection, TornTailIsRejected)
{
    const std::string path =
        writeSample(tempPath("torn.dtr"), sampleRecords(500));
    const std::string whole = slurp(path);
    // Any truncation — mid-frame-header or mid-payload — must throw.
    for (const std::size_t keep :
         {whole.size() - 1, whole.size() - 7, whole.size() / 2}) {
        spit(path, whole.substr(0, keep));
        EXPECT_THROW(TraceReader reader(path), DtrError)
            << "kept " << keep << " of " << whole.size();
    }
    std::remove(path.c_str());
}

TEST(DtrRejection, BitflipAnywhereIsRejected)
{
    const std::string path =
        writeSample(tempPath("flip.dtr"), sampleRecords(200));
    const std::string whole = slurp(path);
    // Flip one bit in the header payload, a data payload, and a CRC.
    for (const std::size_t at :
         {std::size_t{20}, whole.size() / 2, whole.size() - 3}) {
        std::string bad = whole;
        bad[at] = static_cast<char>(bad[at] ^ 0x10);
        spit(path, bad);
        EXPECT_THROW(TraceReader reader(path), DtrError)
            << "flipped byte " << at;
    }
    // Unmodified bytes still load (the harness itself is sound).
    spit(path, whole);
    EXPECT_NO_THROW(TraceReader reader(path));
    std::remove(path.c_str());
}

TEST(DtrRejection, WrongMagicAndMissingHeaderAreRejected)
{
    const std::string path = tempPath("magic.dtr");
    spit(path, "this is not a trace file, not even close........");
    EXPECT_THROW(TraceReader reader(path), DtrError);
    spit(path, ""); // Empty file: no header block.
    EXPECT_THROW(TraceReader reader(path), DtrError);
    std::remove(path.c_str());
    EXPECT_THROW(TraceReader reader(tempPath("enoent.dtr")),
                 std::runtime_error);
}

TEST(DtrRejection, UnsupportedVersionIsRejected)
{
    // Craft a well-framed header whose version field is from the
    // future; the CRC is valid, so only the version check can fire.
    ByteWriter payload;
    payload.putU32(kDtrVersion + 1);
    payload.putU64(0);
    payload.putU64(0);
    payload.putU32(0);
    payload.putString("future");
    const std::string path = tempPath("version.dtr");
    spit(path, encodeDtrBlock(DtrBlock::Header, payload.take()));
    try {
        TraceReader reader(path);
        FAIL() << "future version accepted";
    } catch (const DtrError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(DtrRejection, HeaderAccountingMismatchIsRejected)
{
    // A valid header claiming one record, but no data blocks follow.
    ByteWriter payload;
    payload.putU32(kDtrVersion);
    payload.putU64(0);
    payload.putU64(1); // recordCount lie.
    payload.putU32(0);
    payload.putString("liar");
    const std::string path = tempPath("accounting.dtr");
    spit(path, encodeDtrBlock(DtrBlock::Header, payload.take()));
    EXPECT_THROW(TraceReader reader(path), DtrError);
    std::remove(path.c_str());
}

TEST(DtrRejection, DataBeforeHeaderAndDuplicateHeaderAreRejected)
{
    const std::string path =
        writeSample(tempPath("order.dtr"), sampleRecords(10), 0, 4);
    const std::string whole = slurp(path);
    // Header frame length: reparse its frame header to find the split.
    const std::uint32_t headerLen =
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(whole[5])) |
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(whole[6])) << 8 |
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(whole[7])) << 16 |
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(whole[8])) << 24;
    const std::string header = whole.substr(0, 13 + headerLen);
    const std::string rest = whole.substr(13 + headerLen);
    spit(path, rest + header); // Data first.
    EXPECT_THROW(TraceReader reader(path), DtrError);
    spit(path, header + header + rest); // Two headers.
    EXPECT_THROW(TraceReader reader(path), DtrError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// WorkloadRegistry.
// ---------------------------------------------------------------------

TEST(WorkloadRegistryTest, SyntheticPopulationAndTracesShareOneNamespace)
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    // The full synthetic population is registered...
    EXPECT_GE(reg.names().size(), 57u + 4u);
    const WorkloadInfo &mcf = reg.at("429.mcf");
    EXPECT_EQ(mcf.kind, WorkloadKind::Synthetic);
    EXPECT_FALSE(mcf.isTrace);
    // ...alongside the checked-in trace workloads.
    const WorkloadInfo &gc = reg.at("trace-gc");
    EXPECT_EQ(gc.kind, WorkloadKind::Trace);
    EXPECT_TRUE(gc.isTrace);
    EXPECT_THROW(reg.at("no-such-workload"), std::invalid_argument);
}

TEST(WorkloadRegistryTest, PlusIsReservedForPerCoreLists)
{
    WorkloadInfo info;
    info.name = "a+b";
    info.make = [](const SysConfig &, int, std::uint64_t)
        -> std::unique_ptr<TraceGen> { return nullptr; };
    EXPECT_THROW(WorkloadRegistry::instance().add(std::move(info)),
                 std::invalid_argument);
}

TEST(WorkloadRegistryTest, EnsureTraceIsIdempotentAndLazy)
{
    // The file does not exist — registration must still succeed
    // (factories open lazily); only make() touches the filesystem.
    const std::string path = tempPath("lazy_missing.dtr");
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    const WorkloadInfo &a = reg.ensureTrace(path);
    const WorkloadInfo &b = reg.ensureTrace(path);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.name, "dtr:" + path);
    EXPECT_TRUE(a.isTrace);
    EXPECT_THROW(a.make(SysConfig{}, 0, 1), std::runtime_error);
}

// ---------------------------------------------------------------------
// Replay seed purity.
// ---------------------------------------------------------------------

TEST(TraceReplay, SeedMovesOnlyTheStartOffsetNeverContent)
{
    const auto recs = sampleRecords(512);
    const std::string path =
        writeSample(tempPath("purity.dtr"), recs, 99, 64);
    auto reader = sharedTraceReader(path);

    // Exact replay when the factory seed equals the capture seed.
    TraceReplayGen exact(reader, "purity", 2, 99);
    EXPECT_EQ(exact.startIndex(), 0u);
    EXPECT_EQ(exact.next().addr, recs[0].addr);

    // Any other seed: a deterministic rotation of the same content.
    for (const std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
        for (const int core : {0, 1, 3}) {
            TraceReplayGen gen(reader, "purity", core, seed);
            const std::uint64_t start =
                traceStartIndex(*reader, core, seed);
            EXPECT_EQ(gen.startIndex(), start);
            for (std::size_t k = 0; k < 64; ++k) {
                const TraceRecord got = gen.next();
                const TraceRecord &want =
                    recs[(start + k) % recs.size()];
                ASSERT_EQ(got.addr, want.addr)
                    << "seed " << seed << " core " << core << " step "
                    << k;
                ASSERT_EQ(got.bubbles, want.bubbles);
                ASSERT_EQ(got.isWrite, want.isWrite);
            }
        }
    }
    // Distinct cores get distinct offsets (they share content, not
    // phase — the multi-core analogue of BenignGen's core offsets).
    EXPECT_NE(traceStartIndex(*reader, 0, 7),
              traceStartIndex(*reader, 1, 7));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Differential: captured DTR vs the live generator.
// ---------------------------------------------------------------------

void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    ASSERT_EQ(a.coreIpc.size(), b.coreIpc.size());
    for (std::size_t i = 0; i < a.coreIpc.size(); ++i)
        EXPECT_EQ(a.coreIpc[i], b.coreIpc[i]) << "core " << i;
    EXPECT_EQ(a.benignIpcMean, b.benignIpcMean);
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.mitigations, b.mitigations);
    EXPECT_EQ(a.energyNj, b.energyNj);
    // Everything, not just the headline numbers: per-component
    // counters and probe series must match bit for bit.
    EXPECT_TRUE(a.stats == b.stats);
}

TEST(TraceDifferential, CapturedTraceReplaysBitIdenticalToLiveGenerator)
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    const Tick horizon = 200000;
    const std::string workload = "462.libquantum";

    const RunResult live = runOnce(cfg, workload, AttackKind::None,
                                   TrackerKind::DapperH, horizon,
                                   Engine::Event);

    // Capture each core's stream with the exact runOnce seeding; size
    // the captures off the live run's own consumption so replay never
    // wraps before the horizon.
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    const WorkloadInfo &info = reg.at(workload);
    std::vector<std::string> traceNames;
    std::vector<std::string> paths;
    for (int core = 0; core < cfg.numCores; ++core) {
        const std::uint64_t reads = live.stats.u64(
            "core." + std::to_string(core) + ".memReads");
        const std::uint64_t records = reads * 2 + 4096;
        const std::string path = tempPath(
            "differential_core" + std::to_string(core) + ".dtr");
        auto gen = info.make(cfg, core, cfg.seed + 13);
        TraceWriter writer(path, workload, cfg.seed + 13);
        for (std::uint64_t n = 0; n < records; ++n)
            writer.append(gen->next());
        writer.close();
        traceNames.push_back(reg.ensureTrace(path).name);
        paths.push_back(path);
    }

    // Replay: factory seed (cfg.seed + 13) == each trace's baseSeed, so
    // every core starts at record 0 — the exact-replay contract.
    const AttackInfo &none = AttackRegistry::instance().at("none");
    const TrackerInfo &dapperH = TrackerRegistry::instance().at("dapper-h");
    const RunResult replayEvent = runOnce(cfg, traceNames, none, dapperH,
                                          horizon, Engine::Event);
    expectIdenticalRuns(live, replayEvent);

    // And the tick engine agrees with all of it.
    const RunResult replayTick = runOnce(cfg, traceNames, none, dapperH,
                                         horizon, Engine::Tick);
    expectIdenticalRuns(live, replayTick);

    for (const std::string &path : paths)
        std::remove(path.c_str());
}

} // namespace
} // namespace dapper
