/**
 * @file
 * CoMeT and ABACUS unit tests: Count-Min-Sketch never undercounts, RAT
 * behaviour and early resets, Misra-Gries tracking with the spillover
 * floor, bit-vector semantics, and the spillover-overflow channel reset.
 */

#include <gtest/gtest.h>

#include "src/rh/abacus.hh"
#include "src/rh/comet.hh"

namespace dapper {
namespace {

SysConfig
cfg500()
{
    SysConfig cfg;
    cfg.nRH = 500;
    return cfg;
}

ActEvent
act(int bank, int row, Tick now = 0)
{
    return {0, 0, bank, row, now, 0};
}

int
countKind(const MitigationVec &v, Mitigation::Kind kind)
{
    int n = 0;
    for (const auto &m : v)
        if (m.kind == kind)
            ++n;
    return n;
}

TEST(Comet, SketchNeverUndercounts)
{
    SysConfig cfg = cfg500();
    CometTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 57; ++i)
        tracker.onActivation(act(3, 1234), out);
    EXPECT_GE(tracker.estimateOf(0, 0, 3, 1234), 57u);
}

TEST(Comet, MitigatesAtQuarterThreshold)
{
    SysConfig cfg = cfg500();
    CometTracker tracker(cfg);
    MitigationVec out;
    int acts = 0;
    int vrr = 0;
    for (int i = 0; i < cfg.nRH && vrr == 0; ++i) {
        out.clear();
        tracker.onActivation(act(3, 1234), out);
        ++acts;
        vrr = countKind(out, Mitigation::Kind::VrrRow);
    }
    EXPECT_EQ(vrr, 1);
    EXPECT_LE(acts, cfg.nRH / 4); // N_M(CoMeT) = N_RH / 4.
}

TEST(Comet, RatTracksMitigatedRowAcrossRepeats)
{
    SysConfig cfg = cfg500();
    CometTracker tracker(cfg);
    MitigationVec out;
    int totalVrr = 0;
    for (int i = 0; i < cfg.nRH; ++i) {
        out.clear();
        tracker.onActivation(act(3, 1234), out);
        totalVrr += countKind(out, Mitigation::Kind::VrrRow);
    }
    // The sketch saturates and cannot reset, but the RAT re-arms the row
    // after each mitigation: expect ~nRH / (nRH/4) = 4 mitigations.
    EXPECT_GE(totalVrr, 3);
    EXPECT_LE(totalVrr, 6);
}

TEST(Comet, PeriodicResetEveryThirdOfWindow)
{
    SysConfig cfg = cfg500();
    CometTracker tracker(cfg);
    MitigationVec out;
    tracker.onPeriodic(cfg.tREFW() / 3 + 1, out);
    EXPECT_EQ(countKind(out, Mitigation::Kind::BulkRank),
              cfg.channels * cfg.ranksPerChannel);
    EXPECT_EQ(tracker.bulkResets(),
              static_cast<std::uint64_t>(cfg.channels));
}

TEST(Comet, RatThrashingTriggersExtraResets)
{
    SysConfig cfg = cfg500();
    CometTracker tracker(cfg);
    MitigationVec out;
    std::uint64_t resets = 0;
    // The paper's attack: cycle over 192 rows (> 128 RAT entries) until
    // the sketch saturates and RAT misses dominate.
    for (int round = 0; round < 400; ++round)
        for (int j = 0; j < 192; ++j) {
            out.clear();
            tracker.onActivation(
                act(j % 32, 16384 + (j / 32) * 64,
                    static_cast<Tick>(round) * 5000), out);
            resets += static_cast<std::uint64_t>(
                countKind(out, Mitigation::Kind::BulkRank));
        }
    EXPECT_GT(resets, 0u);
}

TEST(Abacus, SizedByWindowAndThreshold)
{
    SysConfig cfg = cfg500();
    cfg.timeScale = 1.0;
    AbacusTracker tracker(cfg);
    // Physical window: 666K ACTs / 248 => ~2.6K entries (paper: 2466).
    EXPECT_NEAR(tracker.entriesPerChannel(), 2466, 300);
}

TEST(Abacus, BitVectorAvoidsCrossBankOvercount)
{
    SysConfig cfg = cfg500();
    AbacusTracker tracker(cfg);
    MitigationVec out;
    // The same row id in every bank, one sweep: one entry, bits set, no
    // counting.
    for (int bank = 0; bank < 32; ++bank)
        tracker.onActivation(act(bank, 4096), out);
    EXPECT_TRUE(out.empty());
    // Hammering a single (bank,row) counts once per activation after the
    // bit is set.
    int acts = 0;
    for (int i = 0; i < cfg.nM() + 4 && out.empty(); ++i) {
        tracker.onActivation(act(0, 4096), out);
        ++acts;
    }
    EXPECT_FALSE(out.empty());
    EXPECT_LE(acts, cfg.nM() + 1);
}

TEST(Abacus, MitigationRefreshesRowInAllBanks)
{
    SysConfig cfg = cfg500();
    AbacusTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < cfg.nM() + 4 && out.empty(); ++i)
        tracker.onActivation(act(0, 4096), out);
    // The shared counter cannot attribute the row to one bank.
    EXPECT_EQ(countKind(out, Mitigation::Kind::VrrRow),
              cfg.ranksPerChannel * cfg.banksPerRank());
}

TEST(Abacus, SpilloverOverflowResetsChannel)
{
    SysConfig cfg = cfg500();
    AbacusTracker tracker(cfg);
    MitigationVec out;
    const std::uint64_t needed =
        static_cast<std::uint64_t>(tracker.entriesPerChannel()) *
        static_cast<std::uint64_t>(cfg.nM() - 2);
    // The paper's attack: ever-new row ids across banks. Fill the table,
    // then spill.
    std::uint64_t resets = 0;
    std::uint64_t acts = 0;
    int row = 0;
    while (resets == 0 && acts < 4 * needed) {
        out.clear();
        tracker.onActivation(act(static_cast<int>(acts % 32), row), out);
        row = (row + 1) % cfg.rowsPerBank;
        ++acts;
        resets += static_cast<std::uint64_t>(
            countKind(out, Mitigation::Kind::BulkChannel));
    }
    EXPECT_EQ(resets, 1u);
    EXPECT_EQ(tracker.spillResets(), 1u);
    // Overflow takes ~entries x N_M untracked activations (paper: the
    // spillover counter overflows every N x N_RH/2 activations).
    EXPECT_GT(acts, needed / 2);
    EXPECT_LT(acts, needed * 3);
    EXPECT_EQ(tracker.spillOf(0), 0u); // Cleared by the reset.
}

TEST(Abacus, WindowResetClearsTable)
{
    SysConfig cfg = cfg500();
    AbacusTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 100; ++i)
        tracker.onActivation(act(0, 4096), out);
    tracker.onRefreshWindow(0, out);
    // After the reset the row must be re-inserted from scratch: hammer
    // again and expect the full threshold before mitigation.
    out.clear();
    int acts = 0;
    for (int i = 0; i < cfg.nM() + 4 && out.empty(); ++i) {
        tracker.onActivation(act(0, 4096), out);
        ++acts;
    }
    EXPECT_GE(acts, cfg.nM() - 2);
}

} // namespace
} // namespace dapper
