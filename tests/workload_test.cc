/**
 * @file
 * Workload population and generator tests: the 57-application table,
 * suite membership, generator determinism and statistical targets, and
 * the attack generators' address patterns.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/workload/attacks.hh"
#include "src/workload/benign.hh"

namespace dapper {
namespace {

TEST(WorkloadTable, PopulationMatchesPaper)
{
    EXPECT_EQ(workloadTable().size(), 57u);
    EXPECT_EQ(workloadsInSuite("SPEC2K6").size(), 23u);
    EXPECT_EQ(workloadsInSuite("SPEC2K17").size(), 18u);
    EXPECT_EQ(workloadsInSuite("TPC").size(), 4u);
    EXPECT_EQ(workloadsInSuite("Hadoop").size(), 3u);
    EXPECT_EQ(workloadsInSuite("MediaBench").size(), 3u);
    EXPECT_EQ(workloadsInSuite("YCSB").size(), 6u);
    EXPECT_EQ(workloadsInSuite("All").size(), 57u);
}

TEST(WorkloadTable, NamesAreUniqueAndFindable)
{
    std::set<std::string> names;
    for (const auto &w : workloadTable()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_EQ(findWorkload(w.name).name, w.name);
    }
    EXPECT_THROW(findWorkload("no-such-benchmark"), std::invalid_argument);
}

TEST(WorkloadTable, MemoryIntensiveOutliersPresent)
{
    // The paper's attack-sensitive workloads must be high-RBMPKI.
    EXPECT_GT(findWorkload("429.mcf").rbmpki(), 10.0);
    EXPECT_GT(findWorkload("510.parest").rbmpki(), 10.0);
    EXPECT_LT(findWorkload("456.hmmer").rbmpki(), 2.0);
    EXPECT_LT(findWorkload("511.povray").rbmpki(), 2.0);
}

TEST(WorkloadTable, RepresentativeSubsetSpansSuites)
{
    const auto reps = representativeWorkloads();
    std::set<std::string> suites;
    for (const auto &name : reps)
        suites.insert(findWorkload(name).suite);
    EXPECT_EQ(suites.size(), 6u);
}

TEST(BenignGenerator, DeterministicPerSeed)
{
    SysConfig cfg;
    BenignGen a(findWorkload("429.mcf"), cfg, 0, 42);
    BenignGen b(findWorkload("429.mcf"), cfg, 0, 42);
    BenignGen c(findWorkload("429.mcf"), cfg, 0, 43);
    bool anyDiff = false;
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        const TraceRecord rc = c.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        anyDiff = anyDiff || ra.addr != rc.addr;
    }
    EXPECT_TRUE(anyDiff);
}

TEST(BenignGenerator, BubblesMatchMpki)
{
    SysConfig cfg;
    BenignGen gen(findWorkload("429.mcf"), cfg, 0, 1);
    // mcf: 55 MPKI => ~17 bubbles per access.
    const TraceRecord rec = gen.next();
    EXPECT_NEAR(rec.bubbles, 1000.0 / 55.0 - 1.0, 1.0);
}

TEST(BenignGenerator, WriteFractionApproximatelyMet)
{
    SysConfig cfg;
    const WorkloadParams &params = findWorkload("470.lbm"); // 45% writes.
    BenignGen gen(params, cfg, 0, 1);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().isWrite ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / n, params.writeFrac, 0.02);
}

TEST(BenignGenerator, AddressesStayInBounds)
{
    SysConfig cfg;
    BenignGen gen(findWorkload("ycsb-a"), cfg, 3, 9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(gen.next().addr, cfg.totalBytes());
}

TEST(BenignGenerator, CoresUseDisjointSlices)
{
    SysConfig cfg;
    BenignGen g0(findWorkload("456.hmmer"), cfg, 0, 1);
    BenignGen g1(findWorkload("456.hmmer"), cfg, 1, 1);
    std::set<std::uint64_t> a0;
    std::set<std::uint64_t> a1;
    for (int i = 0; i < 3000; ++i) {
        a0.insert(g0.next().addr >> 6);
        a1.insert(g1.next().addr >> 6);
    }
    int shared = 0;
    for (std::uint64_t line : a0)
        shared += a1.count(line) ? 1 : 0;
    EXPECT_LT(shared, 20);
}

class AttackPatternTest : public ::testing::Test
{
  protected:
    AttackPatternTest() : mapper_(cfg_) {}
    SysConfig cfg_;
    AddressMapper mapper_{cfg_};
};

TEST_F(AttackPatternTest, HydraRccTargetsOneRccSet)
{
    auto gen = makeAttackGen(AttackKind::HydraRcc, cfg_, mapper_, 1);
    std::set<int> rowsMod128;
    std::set<int> banks;
    for (int i = 0; i < 256; ++i) {
        const DramAddress d = mapper_.decode(gen->next().addr);
        rowsMod128.insert(d.row % 128);
        banks.insert(d.bank);
    }
    EXPECT_EQ(rowsMod128.size(), 1u); // All conflict in one RCC set.
    EXPECT_EQ(banks.size(), 32u);     // Spread across banks.
}

TEST_F(AttackPatternTest, StreamingCoversManyRows)
{
    auto gen = makeAttackGen(AttackKind::Streaming, cfg_, mapper_, 1);
    std::set<std::uint64_t> rows;
    for (int i = 0; i < 50000; ++i) {
        const TraceRecord rec = gen->next();
        EXPECT_TRUE(rec.bypassLlc);
        const DramAddress d = mapper_.decode(rec.addr);
        rows.insert((static_cast<std::uint64_t>(d.channel) << 40) |
                    (static_cast<std::uint64_t>(d.rank) << 32) |
                    (static_cast<std::uint64_t>(d.bank) << 24) |
                    static_cast<std::uint64_t>(d.row));
    }
    EXPECT_EQ(rows.size(), 50000u); // Never repeats within the sweep.
}

TEST_F(AttackPatternTest, CometRatCyclesExactly192Rows)
{
    auto gen = makeAttackGen(AttackKind::CometRat, cfg_, mapper_, 1);
    std::set<std::uint64_t> unique;
    for (int i = 0; i < 2000; ++i) {
        const DramAddress d = mapper_.decode(gen->next().addr);
        unique.insert((static_cast<std::uint64_t>(d.channel) << 40) |
                      (static_cast<std::uint64_t>(d.bank) << 24) |
                      static_cast<std::uint64_t>(d.row));
    }
    EXPECT_EQ(unique.size(), 2u * 192u); // 192 rows per channel.
}

TEST_F(AttackPatternTest, RefreshAttackAlternatesTwoRowsPerBank)
{
    auto gen = makeAttackGen(AttackKind::RefreshAttack, cfg_, mapper_, 1);
    std::map<int, std::set<int>> rowsPerBank;
    for (int i = 0; i < 4096; ++i) {
        const DramAddress d = mapper_.decode(gen->next().addr);
        if (d.channel == 0 && d.rank == 0)
            rowsPerBank[d.bank].insert(d.row);
    }
    EXPECT_EQ(rowsPerBank.size(), 8u); // 8 banks per rank.
    for (const auto &[bank, rows] : rowsPerBank)
        EXPECT_EQ(rows.size(), 2u); // Two alternating rows each.
}

TEST_F(AttackPatternTest, CacheThrashStaysCached)
{
    auto gen = makeAttackGen(AttackKind::CacheThrash, cfg_, mapper_, 1);
    std::set<std::uint64_t> lines;
    for (int i = 0; i < 100000; ++i) {
        const TraceRecord rec = gen->next();
        EXPECT_FALSE(rec.bypassLlc);
        lines.insert(rec.addr >> 6);
    }
    // Sweeps a 4x-LLC-sized region: every access within the first sweep
    // touches a fresh line.
    const std::uint64_t sweep = 4 * cfg_.llcBytes / 64;
    EXPECT_EQ(lines.size(), std::min<std::uint64_t>(100000, sweep));
}

TEST_F(AttackPatternTest, AttackNamesRoundTrip)
{
    for (AttackKind kind :
         {AttackKind::None, AttackKind::CacheThrash, AttackKind::HydraRcc,
          AttackKind::StartStream, AttackKind::CometRat,
          AttackKind::AbacusSpill, AttackKind::Streaming,
          AttackKind::RefreshAttack, AttackKind::MappingProbe})
        EXPECT_FALSE(attackName(kind).empty());
    EXPECT_EQ(makeAttackGen(AttackKind::None, cfg_, mapper_, 1), nullptr);
}

} // namespace
} // namespace dapper
