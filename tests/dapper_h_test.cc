/**
 * @file
 * DAPPER-H unit tests: bit-vector filtering semantics, double-hash
 * mitigation condition, shared-row refresh, the conservative reset
 * rule, rekeying, and the paper's 96KB storage figure.
 */

#include <gtest/gtest.h>

#include "src/rh/dapper_h.hh"

namespace dapper {
namespace {

SysConfig
cfg500()
{
    SysConfig cfg;
    cfg.nRH = 500;
    return cfg;
}

ActEvent
act(int bank, int row, Tick now = 0)
{
    return {0, 0, bank, row, now, 0};
}

TEST(DapperH, FirstAccessFromBankOnlySetsBit)
{
    DapperHTracker tracker(cfg500());
    MitigationVec out;
    const std::uint64_t g1 = tracker.group1Of(0, 0, 4, 100);
    const std::uint64_t g2 = tracker.group2Of(0, 0, 4, 100);

    tracker.onActivation(act(4, 100), out);
    EXPECT_EQ(tracker.rgc1Of(0, 0, g1), 0u); // Filtered by the bit-vector.
    EXPECT_EQ(tracker.rgc2Of(0, 0, g2), 1u); // Table 2 always counts.
    EXPECT_EQ(tracker.bitVectorOf(0, 0, g1), 1u << 4);

    tracker.onActivation(act(4, 100), out);
    EXPECT_EQ(tracker.rgc1Of(0, 0, g1), 1u); // Bit already set: counts.
    EXPECT_EQ(tracker.rgc2Of(0, 0, g2), 2u);
}

TEST(DapperH, IncrementClearsOtherBanksBits)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    // Find two rows of different banks sharing a Table-1 group.
    const std::uint64_t g1 = tracker.group1Of(0, 0, 0, 1000);
    int otherBank = -1;
    int otherRow = -1;
    for (int row = 0; row < cfg.rowsPerBank && otherBank < 0; ++row)
        if (tracker.group1Of(0, 0, 7, row) == g1) {
            otherBank = 7;
            otherRow = row;
        }
    ASSERT_GE(otherBank, 0);

    tracker.onActivation(act(0, 1000), out);       // Sets bit 0.
    tracker.onActivation(act(otherBank, otherRow), out); // Sets bit 7.
    EXPECT_EQ(tracker.bitVectorOf(0, 0, g1), (1u << 0) | (1u << 7));

    tracker.onActivation(act(0, 1000), out); // Increments, clears bit 7.
    EXPECT_EQ(tracker.bitVectorOf(0, 0, g1), 1u << 0);
}

TEST(DapperH, MitigationNeedsBothTablesAtThreshold)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    // Hammer one row; tables track together (offset 1 from the bit
    // set-act), so mitigation arrives after ~nM activations.
    int actsToMitigate = 0;
    for (int i = 0; i < 2 * cfg.nM(); ++i) {
        out.clear();
        tracker.onActivation(act(9, 31337), out);
        ++actsToMitigate;
        if (!out.empty())
            break;
    }
    EXPECT_GE(actsToMitigate, cfg.nM() - 2);
    EXPECT_LE(actsToMitigate, cfg.nM() + 1);
    EXPECT_EQ(tracker.mitigations(), 1u);
}

TEST(DapperH, MitigationRefreshesOnlySharedRows)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < cfg.nM() + 2; ++i) {
        out.clear();
        tracker.onActivation(act(9, 31337), out);
        if (!out.empty())
            break;
    }
    // Usually exactly the hammered row (the paper's 99.9% single-row
    // case); never the whole group.
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out.size(), 4u);
    bool aggressorRefreshed = false;
    for (const Mitigation &m : out)
        if (m.bank == 9 && m.row == 31337)
            aggressorRefreshed = true;
    EXPECT_TRUE(aggressorRefreshed);
    EXPECT_GE(tracker.singleRowMitigations(), 0u);
}

TEST(DapperH, ResetRuleIsConservativeButBounded)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 2 * cfg.nM(); ++i) {
        out.clear();
        tracker.onActivation(act(9, 31337), out);
        if (!out.empty())
            break;
    }
    const std::uint64_t g1 = tracker.group1Of(0, 0, 9, 31337);
    const std::uint64_t g2 = tracker.group2Of(0, 0, 9, 31337);
    // Post-mitigation values are below the trigger and the bit-vector
    // entry is cleared.
    EXPECT_LT(tracker.rgc1Of(0, 0, g1),
              static_cast<std::uint32_t>(cfg.nM()));
    EXPECT_LT(tracker.rgc2Of(0, 0, g2),
              static_cast<std::uint32_t>(cfg.nM()));
    EXPECT_EQ(tracker.bitVectorOf(0, 0, g1), 0u);
}

TEST(DapperH, NoBitVectorVariantCountsEveryAct)
{
    DapperHTracker tracker(cfg500(), false, true);
    MitigationVec out;
    const std::uint64_t g1 = tracker.group1Of(0, 0, 4, 100);
    tracker.onActivation(act(4, 100), out);
    EXPECT_EQ(tracker.rgc1Of(0, 0, g1), 1u); // No filtering.
}

TEST(DapperH, TwoTablesUseDifferentGroupings)
{
    DapperHTracker tracker(cfg500());
    int differs = 0;
    for (int row = 0; row < 1024; ++row)
        if (tracker.group1Of(0, 0, 2, row) !=
            tracker.group2Of(0, 0, 2, row))
            ++differs;
    EXPECT_GT(differs, 1000);
}

TEST(DapperH, WindowResetRekeysAndClears)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 50; ++i)
        tracker.onActivation(act(3, 555), out);

    std::vector<std::uint64_t> before;
    for (int row = 0; row < 256; ++row)
        before.push_back(tracker.group1Of(0, 0, 0, row));
    tracker.onRefreshWindow(0, out);

    int moved = 0;
    for (int row = 0; row < 256; ++row)
        if (tracker.group1Of(0, 0, 0, row) !=
            before[static_cast<std::size_t>(row)])
            ++moved;
    EXPECT_GT(moved, 250);
    EXPECT_EQ(tracker.rgc2Of(0, 0, tracker.group2Of(0, 0, 3, 555)), 0u);
}

TEST(DapperH, StorageIs96KBPer32GB)
{
    SysConfig cfg = cfg500();
    cfg.timeScale = 1.0;
    DapperHTracker tracker(cfg);
    // 2 tables x 8K x 1B x 2 ranks = 32KB; bit-vector 8K x 32b x 2 ranks
    // = 64KB; total 96KB (paper Table III).
    EXPECT_NEAR(tracker.storage().sramKB, 96.0, 0.1);
    EXPECT_NEAR(tracker.storage().areaMm2(), 0.075, 0.01);
}

TEST(DapperH, StreamingPatternNeverInflatesTable1)
{
    // Activate many distinct rows across banks exactly once (one
    // streaming sweep): Table-1 counters must stay tiny.
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;
    for (int row = 0; row < 4096; ++row)
        for (int bank = 0; bank < 8; ++bank)
            tracker.onActivation(act(bank, row), out);
    EXPECT_EQ(tracker.mitigations(), 0u);
    std::uint32_t maxRgc1 = 0;
    for (std::uint64_t g = 0; g < tracker.numGroups(); ++g)
        maxRgc1 = std::max(maxRgc1, tracker.rgc1Of(0, 0, g));
    EXPECT_LT(maxRgc1, static_cast<std::uint32_t>(cfg.nM()) / 4);
}

} // namespace
} // namespace dapper
