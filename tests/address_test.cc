/**
 * @file
 * AddressMapper: decode/encode roundtrips, field ranges, interleaving
 * properties, and the rank-row-id mapping DAPPER randomizes over.
 */

#include <gtest/gtest.h>

#include "src/common/rng.hh"
#include "src/dram/address.hh"

namespace dapper {
namespace {

TEST(Address, RoundTripRandom)
{
    SysConfig cfg;
    AddressMapper mapper(cfg);
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t addr =
            rng.below(cfg.totalBytes()) & ~std::uint64_t(cfg.lineBytes - 1);
        const DramAddress d = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(d), addr);
    }
}

TEST(Address, FieldsInRange)
{
    SysConfig cfg;
    AddressMapper mapper(cfg);
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const DramAddress d = mapper.decode(rng.below(cfg.totalBytes()));
        EXPECT_GE(d.channel, 0);
        EXPECT_LT(d.channel, cfg.channels);
        EXPECT_GE(d.rank, 0);
        EXPECT_LT(d.rank, cfg.ranksPerChannel);
        EXPECT_GE(d.bank, 0);
        EXPECT_LT(d.bank, cfg.banksPerRank());
        EXPECT_GE(d.row, 0);
        EXPECT_LT(d.row, cfg.rowsPerBank);
        EXPECT_GE(d.col, 0);
        EXPECT_LT(d.col, cfg.linesPerRow());
    }
}

TEST(Address, SequentialLinesStayInRowThenInterleaveChannels)
{
    SysConfig cfg;
    AddressMapper mapper(cfg);
    // Consecutive lines fill a row (row-buffer locality); the next 8KB
    // chunk lands on the other channel (channel bits above column bits).
    const DramAddress a = mapper.decode(0);
    const DramAddress b = mapper.decode(64);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(b.col, a.col + 1);

    const DramAddress c = mapper.decode(static_cast<std::uint64_t>(
        cfg.rowBytes)); // Next row-sized chunk.
    EXPECT_NE(c.channel, a.channel);
}

TEST(Address, RowBitChangeKeepsOtherFields)
{
    SysConfig cfg;
    AddressMapper mapper(cfg);
    DramAddress d;
    d.channel = 1;
    d.rank = 1;
    d.bank = 17;
    d.row = 12345;
    d.col = 77;
    const DramAddress back = mapper.decode(mapper.encode(d));
    EXPECT_EQ(back.channel, d.channel);
    EXPECT_EQ(back.rank, d.rank);
    EXPECT_EQ(back.bank, d.bank);
    EXPECT_EQ(back.row, d.row);
    EXPECT_EQ(back.col, d.col);
}

TEST(Address, RankRowIdRoundTrip)
{
    SysConfig cfg;
    AddressMapper mapper(cfg);
    DramAddress d;
    d.bank = 31;
    d.row = 65535;
    const std::uint64_t id = mapper.rankRowId(d);
    EXPECT_EQ(id, cfg.rowsPerRank() - 1);
    std::int32_t bank = 0;
    std::int32_t row = 0;
    mapper.fromRankRowId(id, bank, row);
    EXPECT_EQ(bank, 31);
    EXPECT_EQ(row, 65535);
}

TEST(Address, EightChannelConfig)
{
    SysConfig cfg;
    cfg.channels = 8;
    AddressMapper mapper(cfg);
    Rng rng(3);
    bool sawHighChannel = false;
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t addr = rng.below(cfg.totalBytes());
        const DramAddress d = mapper.decode(addr);
        EXPECT_LT(d.channel, 8);
        if (d.channel >= 4)
            sawHighChannel = true;
        EXPECT_EQ(mapper.encode(d),
                  addr & ~std::uint64_t(cfg.lineBytes - 1));
    }
    EXPECT_TRUE(sawHighChannel);
}

} // namespace
} // namespace dapper
