/**
 * @file
 * Remaining unit coverage: RNG, stats helpers, energy model, tracker
 * factory, Graphene, and the PrIDE/PARA command-variant plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_map>

#include "src/common/cat_table.hh"
#include "src/common/flat_map.hh"
#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/energy/energy_model.hh"
#include "src/rh/factory.hh"
#include "src/rh/graphene.hh"

namespace dapper {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(1);
    Rng b(1);
    Rng c(2);
    bool diff = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        diff = diff || va != c.next();
    }
    EXPECT_TRUE(diff);
}

TEST(Rng, BelowIsInRangeAndCoversIt)
{
    Rng rng(3);
    std::map<std::uint64_t, int> histogram;
    for (int i = 0; i < 10000; ++i)
        ++histogram[rng.below(7)];
    EXPECT_EQ(histogram.size(), 7u);
    for (const auto &[value, count] : histogram) {
        EXPECT_LT(value, 7u);
        EXPECT_GT(count, 1000); // Roughly uniform.
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 40000; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / 40000.0, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 40000; ++i)
        hits += rng.chance(0.125) ? 1 : 0;
    EXPECT_NEAR(hits / 40000.0, 0.125, 0.01);
}

// The LLC's MSHR table: randomized differential against
// std::unordered_map, exercising collision chains and backward-shift
// deletion at the table's occupancy bound.
TEST(FlatMap64, MatchesUnorderedMapUnderRandomOps)
{
    const std::size_t maxEntries = 64;
    FlatMap64<int> flat(maxEntries);
    std::unordered_map<std::uint64_t, int> ref;
    Rng rng(0xf1a7u);

    for (int op = 0; op < 200000; ++op) {
        // Small key space (and a clustered one) to force collisions.
        const std::uint64_t key = rng.chance(0.5)
                                      ? rng.below(96)
                                      : 0x1000 + rng.below(96) * 8192;
        const double dice = rng.uniform();
        if (dice < 0.45) {
            if (ref.count(key) == 0 && ref.size() < maxEntries) {
                flat.insert(key, static_cast<int>(op));
                ref.emplace(key, static_cast<int>(op));
            }
        } else if (dice < 0.75) {
            const bool erased = ref.erase(key) == 1;
            EXPECT_EQ(flat.erase(key), erased) << "op " << op;
        } else {
            int *v = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end()) << "op " << op;
            if (v != nullptr) {
                ASSERT_EQ(*v, it->second) << "op " << op;
            }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    // Every surviving key is still reachable.
    for (const auto &[key, value] : ref) {
        int *v = flat.find(key);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, value);
    }
}

// Graphene's per-bank CAT: randomized differential against a
// std::unordered_map count table over interleaved insert / increment /
// decrement-to-floor / evict / clear streams (the op mix
// GrapheneTracker::onActivation and onRefreshWindow generate). Victim
// *identity* is pinned separately by the tie-break oracle below; here
// every eviction is checked for Misra-Gries legality (the removed key
// was at or below the floor) and everything else for exact agreement.
TEST(CatTable, MatchesUnorderedMapUnderRandomOps)
{
    const std::size_t maxEntries = 32;
    CatTable cat(maxEntries);
    std::unordered_map<std::uint64_t, std::uint32_t> ref;
    Rng rng(0xca7u);
    std::uint32_t spill = 0;

    for (int op = 0; op < 100000; ++op) {
        // Key space ~3x capacity so full-table evictions dominate.
        const std::uint64_t key = rng.below(96);
        const double dice = rng.uniform();
        if (dice < 0.40) {
            // Activation: bump a tracked row, admit a new one, or (table
            // full) spill and try a Misra-Gries replacement.
            if (std::uint32_t *count = cat.find(key)) {
                ASSERT_EQ(ref.count(key), 1u) << "op " << op;
                ++*count;
                ++ref[key];
            } else if (cat.size() < maxEntries) {
                cat.insert(key, spill + 1);
                ref.emplace(key, spill + 1);
            } else {
                ++spill;
                if (cat.evictReplace(key, spill, spill + 1)) {
                    // Recover the victim by diffing membership, then
                    // check it was a legal Misra-Gries choice.
                    std::uint64_t victim = CatTable::kEmptyKey;
                    int gone = 0;
                    for (const auto &[k, v] : ref)
                        if (cat.find(k) == nullptr) {
                            victim = k;
                            ++gone;
                        }
                    ASSERT_EQ(gone, 1) << "op " << op;
                    ASSERT_LE(ref[victim], spill) << "op " << op;
                    ref.erase(victim);
                    ref.emplace(key, spill + 1);
                }
            }
        } else if (dice < 0.70) {
            std::uint32_t *count = cat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(count != nullptr, it != ref.end()) << "op " << op;
            if (count != nullptr) {
                ASSERT_EQ(*count, it->second) << "op " << op;
            }
        } else if (dice < 0.72) {
            // tREFW window boundary.
            cat.clear();
            ref.clear();
            spill = 0;
        } else {
            // Mitigation: the victim-refreshed row drops to the floor.
            if (std::uint32_t *count = cat.find(key)) {
                *count = spill;
                ref[key] = spill;
            }
        }
        ASSERT_EQ(cat.size(), ref.size()) << "op " << op;
    }
    for (const auto &[key, value] : ref) {
        std::uint32_t *count = cat.find(key);
        ASSERT_NE(count, nullptr);
        EXPECT_EQ(*count, value);
    }
}

// The documented eviction contract, asserted against the layout oracle:
// walking slots from the incoming key's home bucket in table order
// (wrapping), skipping empties, the FIRST of at most kProbeLimit
// occupied slots whose count is <= the floor is the victim — and when
// no examined slot qualifies, the table must be left untouched.
TEST(CatTable, EvictionFollowsDocumentedTieBreak)
{
    Rng rng(0x7ab1eu);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t maxEntries = 16;
        CatTable cat(maxEntries);
        while (cat.size() < maxEntries) {
            const std::uint64_t key = rng.below(1u << 20);
            if (cat.find(key) != nullptr)
                continue;
            cat.insert(key, static_cast<std::uint32_t>(rng.below(5)));
        }
        std::uint64_t incoming;
        do {
            incoming = rng.below(1u << 20);
        } while (cat.find(incoming) != nullptr);
        const std::uint32_t floor =
            static_cast<std::uint32_t>(rng.below(5));

        // Oracle: replay the documented walk over the raw slot views.
        std::uint64_t expected = CatTable::kEmptyKey;
        const std::size_t cap = cat.capacity();
        std::size_t i = cat.homeBucket(incoming);
        int probed = 0;
        for (std::size_t scanned = 0;
             probed < CatTable::kProbeLimit && scanned < cap;
             ++scanned, i = (i + 1) % cap) {
            if (cat.slotKey(i) == CatTable::kEmptyKey)
                continue;
            ++probed;
            if (cat.slotCount(i) <= floor) {
                expected = cat.slotKey(i);
                break;
            }
        }

        const bool evicted = cat.evictReplace(incoming, floor, floor + 1);
        ASSERT_EQ(evicted, expected != CatTable::kEmptyKey)
            << "round " << round;
        ASSERT_EQ(cat.size(), maxEntries) << "round " << round;
        if (evicted) {
            EXPECT_EQ(cat.find(expected), nullptr) << "round " << round;
            std::uint32_t *count = cat.find(incoming);
            ASSERT_NE(count, nullptr) << "round " << round;
            EXPECT_EQ(*count, floor + 1) << "round " << round;
        } else {
            EXPECT_EQ(cat.find(incoming), nullptr) << "round " << round;
        }
    }
}

TEST(Stats, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
}

TEST(StatDictTest, PreservesInsertionOrderAndTypes)
{
    StatDict dict;
    dict.addU64("b.count", 7);
    dict.addF64("a.rate", 0.5);
    dict.addU64("c.count", 9);
    dict.addSeries("a.series", {1.0, 2.0});

    // Order is insertion order — never sorted, never map-ordered.
    ASSERT_EQ(dict.entries().size(), 3u);
    EXPECT_EQ(dict.entries()[0].name, "b.count");
    EXPECT_EQ(dict.entries()[1].name, "a.rate");
    EXPECT_EQ(dict.entries()[2].name, "c.count");

    EXPECT_EQ(dict.u64("b.count"), 7u);
    EXPECT_DOUBLE_EQ(dict.f64("a.rate"), 0.5);
    EXPECT_DOUBLE_EQ(dict.value("b.count"), 7.0);
    EXPECT_TRUE(dict.has("c.count"));
    EXPECT_FALSE(dict.has("missing"));
    EXPECT_THROW(dict.u64("missing"), std::out_of_range);
    EXPECT_THROW(dict.u64("a.rate"), std::out_of_range); // Wrong type.
    EXPECT_THROW(dict.f64("b.count"), std::out_of_range);
    ASSERT_NE(dict.findSeries("a.series"), nullptr);
    EXPECT_EQ(dict.findSeries("a.series")->values.size(), 2u);

    // Equality is layout equality: same entries in another order differ.
    StatDict reordered;
    reordered.addF64("a.rate", 0.5);
    reordered.addU64("b.count", 7);
    reordered.addU64("c.count", 9);
    reordered.addSeries("a.series", {1.0, 2.0});
    EXPECT_FALSE(dict == reordered);
}

TEST(StatWriterTest, ScopesComposeIntoDottedPrefixes)
{
    StatDict dict;
    StatWriter root(dict);
    root.u64("top", 1);
    StatWriter mem = root.scope("mem.0");
    mem.u64("reads", 2);
    StatWriter nested = mem.scope("latency");
    nested.f64("avg", 3.5);
    nested.series("histogram", {1.0});

    EXPECT_EQ(dict.u64("top"), 1u);
    EXPECT_EQ(dict.u64("mem.0.reads"), 2u);
    EXPECT_DOUBLE_EQ(dict.f64("mem.0.latency.avg"), 3.5);
    EXPECT_NE(dict.findSeries("mem.0.latency.histogram"), nullptr);
    // Scoping a child never disturbs the parent's prefix.
    mem.u64("writes", 4);
    EXPECT_EQ(dict.u64("mem.0.writes"), 4u);
}

TEST(Energy, AccumulatesPerEvent)
{
    EnergyModel energy;
    energy.addAct();
    energy.addRead(false);
    energy.addWrite(true);
    energy.addRef();
    energy.addVictimRefresh(2);
    energy.addBulkRefresh(100);
    EXPECT_DOUBLE_EQ(energy.totalNj(),
                     EnergyModel::kActPreNj + EnergyModel::kReadNj +
                         EnergyModel::kWriteNj + EnergyModel::kRefNj +
                         2 * EnergyModel::kVrrRowNj +
                         100 * EnergyModel::kRowRefreshNj);
    EXPECT_EQ(energy.counterWrites(), 1u);
    EXPECT_GT(energy.mitigationNj(), 0.0);
}

TEST(Energy, MitigationShareExcludesDemand)
{
    EnergyModel energy;
    for (int i = 0; i < 100; ++i) {
        energy.addAct();
        energy.addRead(false);
    }
    EXPECT_DOUBLE_EQ(energy.mitigationNj(), 0.0);
    energy.addVictimRefresh(2);
    EXPECT_GT(energy.mitigationNj(), 0.0);
}

TEST(Factory, EveryKindConstructsAndNames)
{
    const TrackerKind kinds[] = {
        TrackerKind::Para,        TrackerKind::ParaDrfmSb,
        TrackerKind::Pride,       TrackerKind::PrideRfmSb,
        TrackerKind::Prac,        TrackerKind::BlockHammer,
        TrackerKind::Hydra,       TrackerKind::Comet,
        TrackerKind::Abacus,      TrackerKind::Graphene,
        TrackerKind::DapperS,     TrackerKind::DapperH,
        TrackerKind::DapperHBr2,  TrackerKind::DapperHDrfmSb,
        TrackerKind::DapperHNoBitVector,
    };
    for (TrackerKind kind : kinds) {
        SysConfig cfg;
        auto tracker = makeTracker(kind, cfg, nullptr);
        ASSERT_NE(tracker, nullptr) << trackerName(kind);
        EXPECT_FALSE(tracker->name().empty());
        EXPECT_GE(tracker->storage().sramKB, 0.0);
    }
    SysConfig cfg;
    EXPECT_EQ(makeTracker(TrackerKind::None, cfg, nullptr), nullptr);
}

TEST(Factory, VariantsAdjustConfig)
{
    SysConfig cfg;
    adjustConfigFor(TrackerKind::DapperHDrfmSb, cfg);
    EXPECT_EQ(cfg.mitigationCmd, SysConfig::MitigationCmd::DrfmSb);

    SysConfig cfg2;
    adjustConfigFor(TrackerKind::DapperHBr2, cfg2);
    EXPECT_EQ(cfg2.blastRadius, 2);

    SysConfig cfg3;
    adjustConfigFor(TrackerKind::DapperH, cfg3);
    EXPECT_EQ(cfg3.blastRadius, 1);
    EXPECT_EQ(cfg3.mitigationCmd, SysConfig::MitigationCmd::Vrr);
}

TEST(Factory, OnlyStartReservesLlc)
{
    EXPECT_TRUE(reservesLlc(TrackerKind::Start));
    EXPECT_FALSE(reservesLlc(TrackerKind::Hydra));
    EXPECT_FALSE(reservesLlc(TrackerKind::DapperH));
}

TEST(Graphene, ExactTrackingMitigatesAtThreshold)
{
    SysConfig cfg;
    cfg.nRH = 500;
    GrapheneTracker tracker(cfg);
    MitigationVec out;
    int acts = 0;
    while (out.empty() && acts < cfg.nM() + 4) {
        tracker.onActivation({0, 0, 2, 4096, 0, 0}, out);
        ++acts;
    }
    ASSERT_FALSE(out.empty());
    EXPECT_LE(acts, cfg.nM());
    EXPECT_EQ(out[0].row, 4096);
}

TEST(Graphene, PerBankTablesAreIndependent)
{
    SysConfig cfg;
    cfg.nRH = 500;
    GrapheneTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 100; ++i) {
        tracker.onActivation({0, 0, 2, 4096, 0, 0}, out);
        tracker.onActivation({0, 0, 3, 4096, 0, 0}, out);
    }
    EXPECT_TRUE(out.empty()); // 100 < threshold in each bank.
}

TEST(Graphene, StorageScalesWorseThanDapper)
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 1.0;
    GrapheneTracker graphene(cfg);
    SysConfig cfg2 = cfg;
    auto dapperH = makeTracker(TrackerKind::DapperH, cfg2, nullptr);
    // Per-bank worst-case tables dwarf DAPPER-H's shared RGCs, and the
    // CAM content is the expensive part.
    EXPECT_GT(graphene.storage().sramKB + graphene.storage().camKB,
              dapperH->storage().sramKB * 3);
    EXPECT_GT(graphene.storage().camKB, 100.0);
}

TEST(Graphene, WindowResetClears)
{
    SysConfig cfg;
    cfg.nRH = 500;
    GrapheneTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 200; ++i)
        tracker.onActivation({0, 0, 2, 4096, 0, 0}, out);
    tracker.onRefreshWindow(0, out);
    out.clear();
    int acts = 0;
    while (out.empty() && acts < cfg.nM() + 4) {
        tracker.onActivation({0, 0, 2, 4096, 0, 0}, out);
        ++acts;
    }
    EXPECT_GE(acts, cfg.nM() - 2); // Full threshold again.
}

} // namespace
} // namespace dapper
