/**
 * @file
 * Hydra and START unit tests: group-counter escalation, RCC behaviour
 * and counter traffic, LLC-resident counters, mitigation thresholds.
 */

#include <gtest/gtest.h>

#include "src/cache/llc.hh"
#include "src/mem/controller.hh"
#include "src/rh/hydra.hh"
#include "src/rh/start.hh"

namespace dapper {
namespace {

SysConfig
cfg500()
{
    SysConfig cfg;
    cfg.nRH = 500;
    return cfg;
}

ActEvent
act(int bank, int row)
{
    return {0, 0, bank, row, 0, 0};
}

int
countKind(const MitigationVec &v, Mitigation::Kind kind)
{
    int n = 0;
    for (const auto &m : v)
        if (m.kind == kind)
            ++n;
    return n;
}

TEST(Hydra, GroupCounterEscalatesAtNgc)
{
    SysConfig cfg = cfg500();
    HydraTracker tracker(cfg);
    MitigationVec out;
    const int nGC = static_cast<int>(0.8 * (cfg.nM() - 2));
    const std::uint64_t rowId = 7ULL * 65536 + 1000; // bank 7, row 1000.

    for (int i = 0; i < nGC - 1; ++i)
        tracker.onActivation(act(7, 1000), out);
    EXPECT_FALSE(tracker.groupPerRow(0, 0, rowId));
    tracker.onActivation(act(7, 1000), out);
    EXPECT_TRUE(tracker.groupPerRow(0, 0, rowId));
    // Per-row counters start at N_GC (conservative initialization) and
    // the escalating activation itself is then counted per-row.
    EXPECT_EQ(tracker.rctCount(0, 0, rowId),
              static_cast<std::uint32_t>(nGC + 1));
}

TEST(Hydra, MitigatesAtThresholdAfterEscalation)
{
    SysConfig cfg = cfg500();
    HydraTracker tracker(cfg);
    MitigationVec out;
    int vrr = 0;
    for (int i = 0; i < cfg.nM() + 8 && vrr == 0; ++i) {
        out.clear();
        tracker.onActivation(act(7, 1000), out);
        vrr = countKind(out, Mitigation::Kind::VrrRow);
    }
    EXPECT_EQ(vrr, 1);
    EXPECT_EQ(tracker.rctCount(0, 0, 7ULL * 65536 + 1000), 0u);
}

TEST(Hydra, RccMissesGenerateCounterTraffic)
{
    SysConfig cfg = cfg500();
    HydraTracker tracker(cfg);
    MitigationVec out;
    // Escalate one group, then touch > 4K distinct escalated rows so the
    // RCC (4K entries) overflows. Easiest: escalate many groups with the
    // attack pattern (rows congruent mod 128 share an RCC set).
    const int nGC = static_cast<int>(0.8 * (cfg.nM() - 2));
    for (int set = 0; set < 64; ++set)
        for (int i = 0; i < nGC; ++i)
            tracker.onActivation(act(set % 32, 8192 + set * 128), out);

    out.clear();
    std::uint64_t traffic = 0;
    for (int round = 0; round < 4; ++round)
        for (int set = 0; set < 64; ++set) {
            out.clear();
            tracker.onActivation(act(set % 32, 8192 + set * 128), out);
            traffic += static_cast<std::uint64_t>(
                countKind(out, Mitigation::Kind::CounterRead));
        }
    // 64 rows in a 32-way set: ~87% miss probability per the paper.
    EXPECT_GT(traffic, 100u);
    EXPECT_GT(tracker.rccMisses(), tracker.rccHits());
}

TEST(Hydra, WindowResetClearsEverything)
{
    SysConfig cfg = cfg500();
    HydraTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 300; ++i)
        tracker.onActivation(act(7, 1000), out);
    tracker.onRefreshWindow(0, out);
    EXPECT_FALSE(tracker.groupPerRow(0, 0, 7ULL * 65536 + 1000));
    EXPECT_EQ(tracker.rctCount(0, 0, 7ULL * 65536 + 1000), 0u);
}

class StartTest : public ::testing::Test
{
  protected:
    StartTest()
        : cfg_(cfg500()),
          mapper_(cfg_),
          mc0_(cfg_, 0, nullptr, nullptr, nullptr),
          mc1_(cfg_, 1, nullptr, nullptr, nullptr),
          llc_(cfg_, mapper_, {&mc0_, &mc1_}),
          tracker_(cfg_)
    {
        llc_.reserveWays(cfg_.llcWays / 2, 0);
        tracker_.attachLlc(&llc_);
    }

    SysConfig cfg_;
    AddressMapper mapper_;
    MemController mc0_;
    MemController mc1_;
    Llc llc_;
    StartTracker tracker_;
};

TEST_F(StartTest, FirstTouchFetchesCounterLine)
{
    MitigationVec out;
    tracker_.onActivation(act(0, 100), out);
    EXPECT_EQ(countKind(out, Mitigation::Kind::CounterRead), 1);
    // Second touch: counter line now cached.
    out.clear();
    tracker_.onActivation(act(0, 100), out);
    EXPECT_EQ(countKind(out, Mitigation::Kind::CounterRead), 0);
    EXPECT_EQ(tracker_.rctCount(0, 0, 100), 2u);
}

TEST_F(StartTest, StreamingEvictsCounterLines)
{
    MitigationVec out;
    // Touch more distinct counter lines than the reserved region holds
    // (8 ways x 8192 sets = 64K lines). Two ranks x 32 banks x 2048
    // line-aligned rows = 128K distinct counter lines.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (int sweep = 0; sweep < 2; ++sweep)
        for (std::uint64_t i = 0; i < 131072; ++i) {
            out.clear();
            const int rank = static_cast<int>(i & 1);
            const int bank = static_cast<int>((i >> 1) & 31);
            const int row = static_cast<int>(((i >> 6) * 32) % 65536);
            tracker_.onActivation({0, rank, bank, row, 0, 0}, out);
            reads += static_cast<std::uint64_t>(
                countKind(out, Mitigation::Kind::CounterRead));
            writes += static_cast<std::uint64_t>(
                countKind(out, Mitigation::Kind::CounterWrite));
        }
    EXPECT_GT(reads, 120000u); // Nearly every access misses.
    EXPECT_GT(writes, 60000u); // Dirty counter writebacks.
}

TEST_F(StartTest, MitigatesAtThreshold)
{
    MitigationVec out;
    int vrr = 0;
    int acts = 0;
    for (int i = 0; i < cfg_.nM() + 4 && vrr == 0; ++i) {
        out.clear();
        tracker_.onActivation(act(3, 2000), out);
        ++acts;
        vrr = countKind(out, Mitigation::Kind::VrrRow);
    }
    EXPECT_EQ(vrr, 1);
    EXPECT_LE(acts, cfg_.nM());
    EXPECT_EQ(tracker_.rctCount(0, 0, 3ULL * 65536 + 2000), 0u);
}

TEST_F(StartTest, WindowResetZeroesCounters)
{
    MitigationVec out;
    for (int i = 0; i < 100; ++i)
        tracker_.onActivation(act(3, 2000), out);
    tracker_.onRefreshWindow(0, out);
    EXPECT_EQ(tracker_.rctCount(0, 0, 3ULL * 65536 + 2000), 0u);
}

} // namespace
} // namespace dapper
