/**
 * @file
 * Full-system integration tests: wiring, IPC sanity, attack impact,
 * tracker protection end to end, energy accounting, and the experiment
 * harness. Horizons are kept short (fractions of a scaled window) so the
 * suite stays fast; the bench binaries run the full-length experiments.
 */

#include <gtest/gtest.h>

#include "src/sim/runner.hh"

namespace dapper {
namespace {

SysConfig
fastCfg()
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    return cfg;
}

TEST(Integration, BaselineIpcIsSane)
{
    SysConfig cfg = fastCfg();
    const RunResult r = runOnce(cfg, "456.hmmer", AttackKind::None,
                                TrackerKind::None, 500000);
    // Compute-bound: IPC must approach the 4-wide limit.
    EXPECT_GT(r.benignIpcMean, 2.5);
    EXPECT_LE(r.benignIpcMean, 4.0);

    const RunResult m = runOnce(cfg, "429.mcf", AttackKind::None,
                                TrackerKind::None, 500000);
    EXPECT_GT(m.benignIpcMean, 0.1);
    EXPECT_LT(m.benignIpcMean, 1.5); // Memory-bound.
}

TEST(Integration, AttackerReducesBenignPerformance)
{
    SysConfig cfg = fastCfg();
    const RunResult base = runOnce(cfg, "429.mcf", AttackKind::None,
                                   TrackerKind::None, 500000);
    const RunResult attacked =
        runOnce(cfg, "429.mcf", AttackKind::RefreshAttack,
                TrackerKind::None, 500000);
    EXPECT_LT(attacked.benignIpcMean, base.benignIpcMean);
}

TEST(Integration, UnprotectedSystemAccumulatesDamage)
{
    SysConfig cfg = fastCfg();
    const RunResult r = runOnce(cfg, "456.hmmer", AttackKind::RefreshAttack,
                                TrackerKind::None, cfg.tREFW() / 2);
    // Half a window of hammering: ground truth shows deep damage.
    EXPECT_GT(r.maxDamage, static_cast<std::uint32_t>(cfg.nRH) / 2);
}

TEST(Integration, DapperHPreventsRowHammerUnderAttack)
{
    SysConfig cfg = fastCfg();
    const RunResult r =
        runOnce(cfg, "456.hmmer", AttackKind::RefreshAttack,
                TrackerKind::DapperH, cfg.tREFW() + cfg.tREFW() / 2);
    EXPECT_EQ(r.rhViolations, 0u);
    EXPECT_LT(r.maxDamage, static_cast<std::uint32_t>(cfg.nRH));
    EXPECT_GT(r.mitigations, 0u);
}

TEST(Integration, DapperHBitVectorNeutralizesStreaming)
{
    SysConfig cfg = fastCfg();
    const RunResult r = runOnce(cfg, "456.hmmer", AttackKind::Streaming,
                                TrackerKind::DapperH, cfg.tREFW());
    EXPECT_EQ(r.rhViolations, 0u);
    EXPECT_EQ(r.mitigations, 0u); // The filter absorbs the sweep.
}

TEST(Integration, HydraAttackGeneratesCounterTraffic)
{
    SysConfig cfg = fastCfg();
    const RunResult r = runOnce(cfg, "429.mcf", AttackKind::HydraRcc,
                                TrackerKind::Hydra, cfg.tREFW() / 2);
    EXPECT_GT(r.counterTraffic, 1000u);
}

TEST(Integration, CometAttackForcesBulkResets)
{
    SysConfig cfg = fastCfg();
    const RunResult r = runOnce(cfg, "429.mcf", AttackKind::CometRat,
                                TrackerKind::Comet, cfg.tREFW());
    EXPECT_GT(r.bulkResets, 0u);
}

TEST(Integration, StartReservesHalfTheLlc)
{
    SysConfig cfg = fastCfg();
    AddressMapper mapper(cfg);
    std::vector<std::unique_ptr<TraceGen>> gens;
    for (int i = 0; i < cfg.numCores; ++i)
        gens.push_back(std::make_unique<BenignGen>(
            findWorkload("429.mcf"), cfg, i, 7));
    System sys(cfg, TrackerKind::Start, std::move(gens));
    EXPECT_EQ(sys.llc().reservedWays(), cfg.llcWays / 2);
    System plain(cfg, TrackerKind::None, [] {
        SysConfig c;
        c.timeScale = 32.0;
        std::vector<std::unique_ptr<TraceGen>> g;
        for (int i = 0; i < c.numCores; ++i)
            g.push_back(std::make_unique<BenignGen>(
                findWorkload("429.mcf"), c, i, 7));
        return g;
    }());
    EXPECT_EQ(plain.llc().reservedWays(), 0);
}

TEST(Integration, EnergyAccumulatesAndMitigationCostsShow)
{
    SysConfig cfg = fastCfg();
    const RunResult base = runOnce(cfg, "429.mcf", AttackKind::None,
                                   TrackerKind::None, cfg.tREFW());
    const RunResult attacked =
        runOnce(cfg, "429.mcf", AttackKind::RefreshAttack,
                TrackerKind::DapperS, cfg.tREFW());
    EXPECT_GT(base.energyNj, 0.0);
    EXPECT_GT(attacked.energyNj, base.energyNj * 0.5);
    EXPECT_GT(attacked.mitigations, 0u);
}

TEST(Integration, RunnerBaselineConventions)
{
    Runner runner;
    const Scenario base = Scenario()
                              .config(fastCfg())
                              .workload("429.mcf")
                              .attack("refresh")
                              .horizon(400000);
    const double vsIdle =
        runner.normalized(Scenario(base).baseline(Baseline::NoAttack));
    EXPECT_LT(vsIdle, 1.0); // The attack itself costs bandwidth.
    const double vsAttack =
        runner.normalized(Scenario(base).baseline(Baseline::SameAttack));
    EXPECT_NEAR(vsAttack, 1.0, 1e-9); // Identical run by construction.
}

TEST(Integration, DeterministicAcrossRuns)
{
    SysConfig cfg = fastCfg();
    const RunResult a = runOnce(cfg, "ycsb-a", AttackKind::RefreshAttack,
                                TrackerKind::DapperH, 300000);
    const RunResult b = runOnce(cfg, "ycsb-a", AttackKind::RefreshAttack,
                                TrackerKind::DapperH, 300000);
    EXPECT_EQ(a.benignIpcMean, b.benignIpcMean);
    EXPECT_EQ(a.mitigations, b.mitigations);
    EXPECT_EQ(a.activations, b.activations);
}

TEST(Integration, EightChannelConfigRuns)
{
    SysConfig cfg = fastCfg();
    cfg.channels = 8;
    const RunResult r = runOnce(cfg, "429.mcf", AttackKind::CacheThrash,
                                TrackerKind::None, 300000);
    EXPECT_GT(r.benignIpcMean, 0.0);
}

TEST(Integration, DrfmVariantBlocksMoreThanVrr)
{
    SysConfig cfg = fastCfg();
    const RunResult vrr =
        runOnce(cfg, "429.mcf", AttackKind::RefreshAttack,
                TrackerKind::DapperH, cfg.tREFW());
    const RunResult drfm =
        runOnce(cfg, "429.mcf", AttackKind::RefreshAttack,
                TrackerKind::DapperHDrfmSb, cfg.tREFW());
    // Same-bank DRFM penalizes eight banks per mitigation: performance
    // can only be equal or worse.
    EXPECT_LE(drfm.benignIpcMean, vrr.benignIpcMean * 1.02);
}

} // namespace
} // namespace dapper
