/**
 * @file
 * ParallelRunner and concurrent-experiment tests: deterministic result
 * ordering, exception propagation, and thread safety of the per-Runner
 * baseline cache (each baseline simulated exactly once, results
 * independent of thread count).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/sim/parallel_runner.hh"
#include "src/sim/runner.hh"

namespace dapper {
namespace {

TEST(ParallelRunner, ResultsComeBackInIndexOrder)
{
    ParallelRunner runner(4);
    const auto out = runner.map(100, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelRunner, EmptyAndSingleElementWork)
{
    ParallelRunner runner(4);
    EXPECT_TRUE(runner.map(0, [](std::size_t) { return 1; }).empty());
    const auto one = runner.map(1, [](std::size_t i) { return i + 7; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7u);
}

TEST(ParallelRunner, EveryIndexRunsExactlyOnce)
{
    ParallelRunner runner(8);
    std::vector<std::atomic<int>> hits(64);
    runner.map(64, [&](std::size_t i) {
        hits[i].fetch_add(1);
        return 0;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, FirstExceptionPropagates)
{
    ParallelRunner runner(4);
    EXPECT_THROW(runner.map(16,
                            [](std::size_t i) {
                                if (i == 5)
                                    throw std::runtime_error("boom");
                                return i;
                            }),
                 std::runtime_error);
}

TEST(ParallelRunner, ThreadCountSelection)
{
    EXPECT_GE(ParallelRunner::defaultThreads(), 1);
    EXPECT_EQ(ParallelRunner(3).threads(), 3);
}

/**
 * Concurrent normalized runs sharing one baseline must agree with the
 * serial result exactly: each Runner computes every baseline once and
 * every simulation draws only on its own config's seed.
 */
TEST(ParallelExperiments, ConcurrentNormalizedMatchesSerial)
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    const std::vector<std::string> trackers = {"hydra", "dapper-h",
                                               "dapper-s", "graphene"};
    ScenarioGrid grid(Scenario()
                          .config(cfg)
                          .workload("429.mcf")
                          .horizon(150000)
                          .baseline(Baseline::NoAttack));
    grid.trackers(trackers);

    Runner serialRunner(1);
    const auto serial = serialRunner.run(grid).normalizedValues();
    // The shared NoAttack baseline was simulated exactly once.
    EXPECT_EQ(serialRunner.baselineCacheSize(), 1u);

    Runner parallelRunner(4);
    const auto parallel = parallelRunner.run(grid).normalizedValues();
    EXPECT_EQ(parallelRunner.baselineCacheSize(), 1u);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "tracker " << i;
}

} // namespace
} // namespace dapper
