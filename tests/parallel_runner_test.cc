/**
 * @file
 * ParallelRunner and concurrent-experiment tests: deterministic result
 * ordering, exception propagation, and thread safety of the baseline
 * memo in experiment.cc (each baseline simulated exactly once, results
 * independent of thread count).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/sim/experiment.hh"
#include "src/sim/parallel_runner.hh"

namespace dapper {
namespace {

TEST(ParallelRunner, ResultsComeBackInIndexOrder)
{
    ParallelRunner runner(4);
    const auto out = runner.map(100, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelRunner, EmptyAndSingleElementWork)
{
    ParallelRunner runner(4);
    EXPECT_TRUE(runner.map(0, [](std::size_t) { return 1; }).empty());
    const auto one = runner.map(1, [](std::size_t i) { return i + 7; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 7u);
}

TEST(ParallelRunner, EveryIndexRunsExactlyOnce)
{
    ParallelRunner runner(8);
    std::vector<std::atomic<int>> hits(64);
    runner.map(64, [&](std::size_t i) {
        hits[i].fetch_add(1);
        return 0;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, FirstExceptionPropagates)
{
    ParallelRunner runner(4);
    EXPECT_THROW(runner.map(16,
                            [](std::size_t i) {
                                if (i == 5)
                                    throw std::runtime_error("boom");
                                return i;
                            }),
                 std::runtime_error);
}

TEST(ParallelRunner, ThreadCountSelection)
{
    EXPECT_GE(ParallelRunner::defaultThreads(), 1);
    EXPECT_EQ(ParallelRunner(3).threads(), 3);
}

/**
 * Concurrent normalizedPerf calls sharing one baseline must agree with
 * the serial result exactly: the memo computes each baseline once and
 * every simulation draws only on its own config's seed.
 */
TEST(ParallelExperiments, ConcurrentNormalizedPerfMatchesSerial)
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    const Tick horizon = 150000;
    const TrackerKind kinds[] = {TrackerKind::Hydra, TrackerKind::DapperH,
                                 TrackerKind::DapperS,
                                 TrackerKind::Graphene};

    clearBaselineCache();
    std::vector<double> serial;
    for (TrackerKind kind : kinds)
        serial.push_back(normalizedPerf(cfg, "429.mcf", AttackKind::None,
                                        kind, Baseline::NoAttack,
                                        horizon));

    clearBaselineCache();
    ParallelRunner runner(4);
    const auto parallel = runner.map(std::size(kinds), [&](std::size_t i) {
        return normalizedPerf(cfg, "429.mcf", AttackKind::None, kinds[i],
                              Baseline::NoAttack, horizon);
    });

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "tracker " << i;
    clearBaselineCache();
}

} // namespace
} // namespace dapper
