/**
 * @file
 * Registry round-trip and metadata tests: every tracker/attack entry
 * resolves back to itself by name, names are unique and stay in sync
 * with the internal enum surfaces (trackerName / attackName) and with
 * the combo list tests/scheduler_equivalence_test.cc pins, capability
 * metadata matches the factory layer, and a tracker registered outside
 * factory.cc (the "one file" recipe) is a first-class citizen of the
 * Scenario API.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/sim/runner.hh"

namespace dapper {
namespace {

TEST(TrackerRegistryTest, EveryEntryRoundTripsByName)
{
    auto &registry = TrackerRegistry::instance();
    std::set<std::string> seen;
    for (const TrackerInfo *info : registry.entries()) {
        EXPECT_TRUE(seen.insert(info->name).second)
            << "duplicate name " << info->name;
        // parse(name(x)) == x: lookup returns the same stable entry.
        EXPECT_EQ(registry.find(info->name), info);
        EXPECT_EQ(&registry.at(info->name), info);
    }
}

TEST(TrackerRegistryTest, BuiltinsRoundTripByKindAndMatchTrackerName)
{
    auto &registry = TrackerRegistry::instance();
    for (const TrackerInfo *info : registry.entries()) {
        if (!info->kind)
            continue;
        EXPECT_EQ(&registry.at(*info->kind), info) << info->name;
        // Display names stay in sync with the enum surface.
        EXPECT_EQ(info->displayName, trackerName(*info->kind));
        EXPECT_EQ(info->reservesLlc, reservesLlc(*info->kind));
    }
}

TEST(TrackerRegistryTest, CounterAttacksResolve)
{
    for (const TrackerInfo *info : TrackerRegistry::instance().entries())
        EXPECT_NE(AttackRegistry::instance().find(info->counterAttack),
                  nullptr)
            << info->name << " -> " << info->counterAttack;
    EXPECT_EQ(TrackerRegistry::instance().at("hydra").counterAttack,
              "hydra-rcc");
    EXPECT_EQ(TrackerRegistry::instance().at("start").counterAttack,
              "start-stream");
    EXPECT_EQ(TrackerRegistry::instance().at("comet").counterAttack,
              "comet-rat");
    EXPECT_EQ(TrackerRegistry::instance().at("abacus").counterAttack,
              "abacus-spill");
}

TEST(TrackerRegistryTest, UnknownNameThrowsListingChoices)
{
    try {
        TrackerRegistry::instance().at("no-such-tracker");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no-such-tracker"), std::string::npos);
        EXPECT_NE(msg.find("dapper-h"), std::string::npos);
    }
}

TEST(AttackRegistryTest, EveryEntryRoundTripsByNameAndKind)
{
    auto &registry = AttackRegistry::instance();
    std::set<std::string> seen;
    for (const AttackInfo *info : registry.entries()) {
        EXPECT_TRUE(seen.insert(info->name).second)
            << "duplicate name " << info->name;
        EXPECT_EQ(registry.find(info->name), info);
        EXPECT_EQ(&registry.at(info->name), info);
        ASSERT_TRUE(info->kind.has_value()) << info->name;
        EXPECT_EQ(&registry.at(*info->kind), info);
        // Names stay in sync with the enum surface.
        EXPECT_EQ(info->name, attackName(*info->kind));
    }
}

/**
 * The scheduler-equivalence suite pins these (tracker, attack) combos
 * bit-identical across engines; the registries must keep exporting
 * every one of them under these exact names so benches and CLI flags
 * can reach all pinned behavior.
 */
TEST(RegistrySyncTest, SchedulerEquivalenceComboListResolves)
{
    const std::pair<const char *, TrackerKind> trackers[] = {
        {"none", TrackerKind::None},
        {"hydra", TrackerKind::Hydra},
        {"start", TrackerKind::Start},
        {"dapper-h", TrackerKind::DapperH},
        {"blockhammer", TrackerKind::BlockHammer},
        {"para", TrackerKind::Para},
        {"prac", TrackerKind::Prac},
        {"abacus", TrackerKind::Abacus},
        {"dapper-s", TrackerKind::DapperS},
        {"comet", TrackerKind::Comet},
    };
    const std::pair<const char *, AttackKind> attacks[] = {
        {"none", AttackKind::None},
        {"refresh", AttackKind::RefreshAttack},
        {"hydra-rcc", AttackKind::HydraRcc},
        {"streaming", AttackKind::Streaming},
        {"start-stream", AttackKind::StartStream},
        {"abacus-spill", AttackKind::AbacusSpill},
    };
    for (const auto &[name, kind] : trackers)
        EXPECT_EQ(TrackerRegistry::instance().at(name).kind, kind)
            << name;
    for (const auto &[name, kind] : attacks)
        EXPECT_EQ(AttackRegistry::instance().at(name).kind, kind) << name;
}

/**
 * TrackerInfo::storage() — the path tab03 and the "tracker.storage.*"
 * stats resolve through — must report exactly what a directly-built
 * tracker reports (Table III re-derived from the registry is
 * bit-identical), and the stats export must carry the same numbers.
 */
TEST(TrackerRegistryTest, StorageViaRegistryMatchesDirectConstruction)
{
    for (const TrackerInfo *info : TrackerRegistry::instance().entries()) {
        SysConfig cfg;
        cfg.nRH = 500;
        cfg.timeScale = 1.0; // Table III quotes physical tREFW.
        const StorageEstimate viaRegistry = info->storage(cfg);
        SysConfig direct = cfg;
        info->adjustConfig(direct);
        const std::unique_ptr<Tracker> tracker =
            info->make(direct, nullptr);
        if (tracker == nullptr) { // "none": no storage at all.
            EXPECT_EQ(viaRegistry.sramKB, 0.0) << info->name;
            EXPECT_EQ(viaRegistry.camKB, 0.0) << info->name;
            continue;
        }
        const StorageEstimate fromTracker = tracker->storage();
        EXPECT_EQ(viaRegistry.sramKB, fromTracker.sramKB) << info->name;
        EXPECT_EQ(viaRegistry.camKB, fromTracker.camKB) << info->name;
        EXPECT_EQ(viaRegistry.areaMm2(), fromTracker.areaMm2())
            << info->name;

        // The default exportStats publishes the same estimate.
        StatDict dict;
        StatWriter writer(dict);
        StatWriter scoped = writer.scope("tracker");
        tracker->exportStats(scoped);
        EXPECT_EQ(dict.f64("tracker.storage.sramKB"), fromTracker.sramKB)
            << info->name;
        EXPECT_EQ(dict.f64("tracker.storage.camKB"), fromTracker.camKB)
            << info->name;
        EXPECT_EQ(dict.f64("tracker.storage.areaMm2"),
                  fromTracker.areaMm2())
            << info->name;
        EXPECT_EQ(dict.u64("tracker.mitigations"), 0u) << info->name;
    }
}

// ---------------------------------------------------------------------
// The "adding a tracker in one file" recipe: register an entry from
// this translation unit and drive it through the full Scenario API.
// The alias delegates to the DAPPER-H factory, so its results must be
// bit-identical to the built-in entry — proving registry-resolved
// trackers take the exact same path as enum-resolved ones.
// ---------------------------------------------------------------------

DAPPER_REGISTER_TRACKER(testAlias, {
    .name = "test-alias-dapper-h",
    .displayName = "TestAlias",
    .kind = {},
    .reservesLlc = false,
    .counterAttack = "streaming",
    .adjustConfig = {},
    .make =
        [](SysConfig &cfg, Llc *llc) {
            return makeTracker(TrackerKind::DapperH, cfg, llc);
        },
});

TEST(RegistryExtensionTest, OneFileTrackerRunsThroughScenarioApi)
{
    const TrackerInfo &info =
        TrackerRegistry::instance().at("test-alias-dapper-h");
    EXPECT_FALSE(info.kind.has_value());
    EXPECT_EQ(info.displayName, "TestAlias");

    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    const Scenario base = Scenario()
                              .config(cfg)
                              .workload("429.mcf")
                              .attack("refresh")
                              .horizon(200000);
    Runner runner;
    const RunResult custom =
        runner.runRaw(Scenario(base).tracker("test-alias-dapper-h"));
    const RunResult builtin =
        runner.runRaw(Scenario(base).tracker("dapper-h"));
    EXPECT_EQ(custom.benignIpcMean, builtin.benignIpcMean);
    EXPECT_EQ(custom.mitigations, builtin.mitigations);
    EXPECT_EQ(custom.activations, builtin.activations);
    EXPECT_EQ(custom.energyNj, builtin.energyNj);
}

} // namespace
} // namespace dapper
