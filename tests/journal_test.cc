/**
 * @file
 * Journal format tests: CRC-32 vectors, ByteWriter/ByteReader
 * round-trips (including bit-exact doubles), record framing, the
 * durable-in-order scan contract, and torn-tail recovery — a journal
 * truncated at EVERY possible byte offset must recover exactly its
 * complete-record prefix, because a SIGKILLed fleet worker can die at
 * any point of an append.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/common/journal.hh"

namespace dapper {
namespace {

/** Temp file path that cleans up after itself. */
class TempFile
{
  public:
    TempFile()
    {
        char name[] = "/tmp/dapper_journal_test_XXXXXX";
        const int fd = ::mkstemp(name);
        EXPECT_GE(fd, 0);
        ::close(fd);
        path_ = name;
    }

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out),
              bytes.size());
    std::fclose(out);
}

std::string
readFileBytes(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    EXPECT_NE(in, nullptr);
    std::string bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        bytes.append(buf, n);
    std::fclose(in);
    return bytes;
}

TEST(Crc32, KnownVectorsAndChaining)
{
    // The canonical IEEE CRC-32 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    // Chaining via the seed equals one shot over the concatenation.
    const std::uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

TEST(ByteCodec, RoundTripsAllTypes)
{
    ByteWriter w;
    w.putU8(0xAB);
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putF64(-0.1); // Not exactly representable: must survive bit-exact.
    w.putF64(1.0 / 3.0);
    w.putString("hello|world");
    w.putString("");

    ByteReader r(w.bytes());
    EXPECT_EQ(r.getU8(), 0xAB);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getF64(), -0.1);
    EXPECT_EQ(r.getF64(), 1.0 / 3.0);
    EXPECT_EQ(r.getString(), "hello|world");
    EXPECT_EQ(r.getString(), "");
    EXPECT_TRUE(r.done());
}

TEST(ByteCodec, ReaderThrowsOnTruncation)
{
    ByteWriter w;
    w.putU64(42);
    ByteReader r(w.bytes().data(), 4); // Half a u64.
    EXPECT_THROW(r.getU64(), std::runtime_error);

    ByteWriter w2;
    w2.putString("abcdef");
    // Length prefix says 6 but cut the payload short.
    ByteReader r2(w2.bytes().data(), w2.bytes().size() - 2);
    EXPECT_THROW(r2.getString(), std::runtime_error);
}

TEST(Journal, EncodeScanRoundTrip)
{
    std::string image = encodeJournalRecord(1, "first");
    image += encodeJournalRecord(2, "");
    image += encodeJournalRecord(7, std::string(1000, 'x'));

    const JournalScan scan = scanJournalBytes(image.data(), image.size());
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.validBytes, image.size());
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, 1);
    EXPECT_EQ(scan.records[0].payload, "first");
    EXPECT_EQ(scan.records[1].type, 2);
    EXPECT_EQ(scan.records[1].payload, "");
    EXPECT_EQ(scan.records[2].type, 7);
    EXPECT_EQ(scan.records[2].payload.size(), 1000u);
}

TEST(Journal, ScanStopsAtCorruptedRecord)
{
    std::string image = encodeJournalRecord(1, "good");
    const std::size_t firstEnd = image.size();
    image += encodeJournalRecord(2, "flipped");
    image[firstEnd + 14] ^= 0x01; // Flip one payload bit of record 2.
    image += encodeJournalRecord(3, "after");

    // Durable-in-order: the flip costs record 2 AND everything after.
    const JournalScan scan = scanJournalBytes(image.data(), image.size());
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.validBytes, firstEnd);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].payload, "good");
}

TEST(Journal, TornTailAtEveryOffsetRecoversThePrefix)
{
    const std::vector<std::string> payloads = {"alpha", "", "gamma-gamma"};
    std::string image;
    std::vector<std::size_t> ends; // Offset after each complete record.
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        image += encodeJournalRecord(static_cast<std::uint8_t>(i + 1),
                                     payloads[i]);
        ends.push_back(image.size());
    }

    for (std::size_t cut = 0; cut <= image.size(); ++cut) {
        const JournalScan scan = scanJournalBytes(image.data(), cut);
        std::size_t expect = 0;
        while (expect < ends.size() && ends[expect] <= cut)
            ++expect;
        ASSERT_EQ(scan.records.size(), expect) << "cut at " << cut;
        EXPECT_EQ(scan.validBytes,
                  expect == 0 ? 0 : ends[expect - 1])
            << "cut at " << cut;
        EXPECT_EQ(scan.torn, cut != scan.validBytes) << "cut at " << cut;
    }
}

TEST(Journal, RecoverTruncatesFileToValidPrefix)
{
    TempFile file;
    std::string image = encodeJournalRecord(1, "keep-me");
    const std::size_t keep = image.size();
    image += encodeJournalRecord(2, "torn-record");
    image.resize(image.size() - 3); // Simulate SIGKILL mid-append.
    writeFileBytes(file.path(), image);

    // Pre-recovery the tail reads as torn; recovery truncates it and
    // reports the post-truncation (clean) state.
    EXPECT_TRUE(scanJournalFile(file.path()).torn);
    const JournalScan scan = recoverJournalFile(file.path());
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].payload, "keep-me");
    EXPECT_EQ(readFileBytes(file.path()).size(), keep);

    // Post-recovery appends produce a well-formed journal again.
    JournalWriter writer;
    writer.open(file.path());
    writer.append(3, "appended-after-recovery");
    writer.close();
    const JournalScan rescan = scanJournalFile(file.path());
    EXPECT_FALSE(rescan.torn);
    ASSERT_EQ(rescan.records.size(), 2u);
    EXPECT_EQ(rescan.records[1].payload, "appended-after-recovery");
}

TEST(Journal, MissingFileScansEmptyAndWriterCreates)
{
    const std::string path = "/tmp/dapper_journal_test_missing_file";
    std::remove(path.c_str());
    const JournalScan scan = scanJournalFile(path);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(scan.torn);

    JournalWriter writer;
    writer.open(path);
    EXPECT_TRUE(writer.isOpen());
    writer.append(9, "created");
    writer.sync();
    writer.close();
    EXPECT_FALSE(writer.isOpen());
    const JournalScan rescan = scanJournalFile(path);
    ASSERT_EQ(rescan.records.size(), 1u);
    EXPECT_EQ(rescan.records[0].type, 9);
    std::remove(path.c_str());
}

TEST(Journal, GarbageLeadingBytesScanAsTornEmpty)
{
    const std::string garbage = "this is not a journal at all";
    const JournalScan scan =
        scanJournalBytes(garbage.data(), garbage.size());
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.validBytes, 0u);
    EXPECT_TRUE(scan.records.empty());
}

} // namespace
} // namespace dapper
