/**
 * @file
 * DAPPER-S unit tests: secure-hash group mapping, RGC counting,
 * group-wide mitigation, rekeying, and storage.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/rh/dapper_s.hh"

namespace dapper {
namespace {

SysConfig
cfg500()
{
    SysConfig cfg;
    cfg.nRH = 500;
    return cfg;
}

ActEvent
act(int bank, int row, Tick now = 0)
{
    return {0, 0, bank, row, now, 0};
}

TEST(DapperS, GroupCountIsRowsPerRankOverGroupSize)
{
    DapperSTracker tracker(cfg500());
    EXPECT_EQ(tracker.numGroups(), 8192u); // 2M / 256.
}

TEST(DapperS, MappingIsUniformish)
{
    DapperSTracker tracker(cfg500());
    std::map<std::uint64_t, int> histogram;
    for (int row = 0; row < 65536; ++row)
        ++histogram[tracker.groupOf(0, 0, 3, row)];
    // 64K rows over 8K groups: mean 8; a good hash keeps the max load
    // far below a pathological pile-up.
    int maxLoad = 0;
    for (const auto &[group, load] : histogram)
        maxLoad = std::max(maxLoad, load);
    EXPECT_GT(histogram.size(), 6000u);
    EXPECT_LT(maxLoad, 40);
}

TEST(DapperS, CountsUntilMitigationThenResets)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;
    const std::uint64_t group = tracker.groupOf(0, 0, 2, 777);

    // One below the (guard-banded) trigger: no mitigation.
    for (int i = 0; i < cfg.nM() - 3; ++i) {
        out.clear();
        tracker.onActivation(act(2, 777), out);
        EXPECT_TRUE(out.empty()) << "at " << i;
    }
    EXPECT_EQ(tracker.rgcOf(0, 0, group),
              static_cast<std::uint32_t>(cfg.nM() - 3));

    out.clear();
    tracker.onActivation(act(2, 777), out);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(cfg.rowGroupSize));
    EXPECT_EQ(tracker.rgcOf(0, 0, group), 0u);
    EXPECT_EQ(tracker.mitigations(), 1u);
}

TEST(DapperS, MitigationRefreshesExactlyTheGroupMembers)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < cfg.nM() - 2; ++i) {
        out.clear();
        tracker.onActivation(act(5, 4242), out);
    }
    ASSERT_EQ(out.size(), static_cast<std::size_t>(cfg.rowGroupSize));

    // Every refreshed row must map back to the same group, and the
    // hammered row itself must be among them.
    const std::uint64_t group = tracker.groupOf(0, 0, 5, 4242);
    bool foundAggressor = false;
    std::set<std::pair<int, int>> unique;
    for (const Mitigation &m : out) {
        EXPECT_EQ(m.kind, Mitigation::Kind::VrrRow);
        EXPECT_EQ(tracker.groupOf(0, 0, m.bank, m.row), group);
        unique.emplace(m.bank, m.row);
        if (m.bank == 5 && m.row == 4242)
            foundAggressor = true;
    }
    EXPECT_TRUE(foundAggressor);
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(cfg.rowGroupSize));
}

TEST(DapperS, RekeyChangesGroupsAndZeroesCounters)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 100; ++i)
        tracker.onActivation(act(1, 99), out);

    std::vector<std::uint64_t> before;
    for (int row = 0; row < 256; ++row)
        before.push_back(tracker.groupOf(0, 0, 0, row));

    tracker.onRefreshWindow(0, out);
    EXPECT_EQ(tracker.rekeys(), 1u);

    int moved = 0;
    for (int row = 0; row < 256; ++row)
        if (tracker.groupOf(0, 0, 0, row) !=
            before[static_cast<std::size_t>(row)])
            ++moved;
    EXPECT_GT(moved, 250); // Nearly every row regrouped.
    EXPECT_EQ(tracker.rgcOf(0, 0, tracker.groupOf(0, 0, 1, 99)), 0u);
}

TEST(DapperS, ShortResetPeriodRekeysViaPeriodicHook)
{
    SysConfig cfg = cfg500();
    cfg.dapperSResetUs = 12.0;
    DapperSTracker tracker(cfg);
    MitigationVec out;
    EXPECT_LT(cfg.dapperSReset(), cfg.tREFW());
    tracker.onPeriodic(cfg.dapperSReset() + 1, out);
    EXPECT_EQ(tracker.rekeys(), 1u);
    tracker.onPeriodic(2 * cfg.dapperSReset() + 1, out);
    EXPECT_EQ(tracker.rekeys(), 2u);
}

TEST(DapperS, PerRankTablesAreIndependent)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;
    for (int i = 0; i < 10; ++i)
        tracker.onActivation({0, 0, 0, 123, 0, 0}, out);
    for (int i = 0; i < 3; ++i)
        tracker.onActivation({1, 1, 0, 123, 0, 0}, out);
    EXPECT_EQ(tracker.rgcOf(0, 0, tracker.groupOf(0, 0, 0, 123)), 10u);
    EXPECT_EQ(tracker.rgcOf(1, 1, tracker.groupOf(1, 1, 0, 123)), 3u);
}

TEST(DapperS, StorageMatchesPaperScale)
{
    SysConfig cfg = cfg500();
    cfg.timeScale = 1.0;
    DapperSTracker tracker(cfg);
    // 8K 1-byte RGCs per rank, 2 ranks per 32GB channel: 16KB.
    EXPECT_NEAR(tracker.storage().sramKB, 16.0, 0.1);
}

} // namespace
} // namespace dapper
