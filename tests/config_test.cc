/**
 * @file
 * SysConfig: derived geometry, time conversion, window scaling, and
 * validation.
 */

#include <gtest/gtest.h>

#include "src/common/config.hh"

namespace dapper {
namespace {

TEST(Config, DefaultsMatchPaperTableI)
{
    SysConfig cfg;
    cfg.validate();
    EXPECT_EQ(cfg.numCores, 4);
    EXPECT_EQ(cfg.llcBytes, 8ULL << 20);
    EXPECT_EQ(cfg.llcWays, 16);
    EXPECT_EQ(cfg.channels, 2);
    EXPECT_EQ(cfg.ranksPerChannel, 2);
    EXPECT_EQ(cfg.banksPerRank(), 32);
    EXPECT_EQ(cfg.rowsPerBank, 64 * 1024);
    EXPECT_EQ(cfg.rowBytes, 8192);
    EXPECT_EQ(cfg.totalBytes(), 64ULL << 30);
    EXPECT_EQ(cfg.rowsPerRank(), 2ULL << 20); // 2M-row randomized space.
    EXPECT_EQ(cfg.nM(), 250);
}

TEST(Config, TickConversion)
{
    SysConfig cfg;
    EXPECT_EQ(cfg.tRC(), nsToTicks(48.0));
    EXPECT_EQ(nsToTicks(48.0), 192u); // 48ns at 4GHz.
    EXPECT_EQ(nsToTicks(2.5), 10u);
    EXPECT_EQ(nsToTicks(0.0), 0u);
    EXPECT_DOUBLE_EQ(ticksToNs(192), 48.0);
}

TEST(Config, WindowScalingPreservesRefreshDutyCycle)
{
    SysConfig a;
    a.timeScale = 1.0;
    SysConfig b;
    b.timeScale = 16.0;
    const double dutyA =
        static_cast<double>(a.tRFC()) / static_cast<double>(a.tREFI());
    const double dutyB =
        static_cast<double>(b.tRFC()) / static_cast<double>(b.tREFI());
    EXPECT_NEAR(dutyA, dutyB, 0.01);
    EXPECT_NEAR(static_cast<double>(a.tREFW()) / b.tREFW(), 16.0, 0.1);
    // Per-command timing is NOT scaled.
    EXPECT_EQ(a.tRC(), b.tRC());
    EXPECT_EQ(a.tRRDS(), b.tRRDS());
}

TEST(Config, RefreshCountPerWindowInvariant)
{
    // 8192 auto-refresh commands per tREFW regardless of scaling.
    for (double scale : {1.0, 8.0, 16.0, 32.0}) {
        SysConfig cfg;
        cfg.timeScale = scale;
        const double refs = static_cast<double>(cfg.tREFW()) / cfg.tREFI();
        EXPECT_NEAR(refs, 8205.0, 25.0) << "scale " << scale;
    }
}

TEST(Config, ValidationRejectsBadGeometry)
{
    SysConfig cfg;
    cfg.channels = 3;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = SysConfig{};
    cfg.rowsPerBank = 1000;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = SysConfig{};
    cfg.rowGroupSize = 100;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = SysConfig{};
    cfg.timeScale = 0.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = SysConfig{};
    cfg.numCores = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, DapperSResetDefaultsToWindow)
{
    SysConfig cfg;
    EXPECT_EQ(cfg.dapperSReset(), cfg.tREFW());
    cfg.dapperSResetUs = 12.0;
    EXPECT_LT(cfg.dapperSReset(), cfg.tREFW());
}

TEST(Config, MitigationCommandDurations)
{
    SysConfig cfg;
    EXPECT_EQ(cfg.vrrTicks(), nsToTicks(100.0));
    cfg.blastRadius = 2;
    EXPECT_EQ(cfg.vrrTicks(), nsToTicks(200.0));
    EXPECT_EQ(cfg.drfmSbTicks(), nsToTicks(240.0));
    EXPECT_EQ(cfg.rfmSbTicks(), nsToTicks(190.0));
}

} // namespace
} // namespace dapper
