/**
 * @file
 * dapper-fleet robustness tests: backoff/shard bookkeeping units, the
 * binary result codec, straight-through vs fleet bit-identical JSON,
 * and the fault-injection battery — workers SIGKILLed at arbitrary
 * cells, wedged cells reaped by the watchdog, always-failing cells
 * quarantined, graceful SIGINT drain, torn journal tails — each
 * followed by a resume that must complete the campaign without ever
 * executing a completed cell twice (proven from the journals).
 *
 * Simulation is substituted by FleetOptions::executor where the test
 * exercises the *coordinator* (fast, deterministic synthetic results);
 * the bit-identical test runs the real simulator on a tiny grid.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "src/common/journal.hh"
#include "src/sim/fleet/fleet.hh"

namespace dapper {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    TempDir()
    {
        char name[] = "/tmp/dapper_fleet_test_XXXXXX";
        EXPECT_NE(::mkdtemp(name), nullptr);
        path_ = name;
    }

    ~TempDir() { fs::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

SysConfig
fastCfg()
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 64.0;
    return cfg;
}

/** A synthetic grid whose cells never reach the simulator (tests pair
 *  it with a synthetic executor). Six unique cells. */
ScenarioGrid
syntheticGrid()
{
    ScenarioGrid grid(
        Scenario().config(fastCfg()).windows(1).baseline(Baseline::Raw));
    grid.workloads({"w1", "w2", "w3"});
    grid.nRH({250, 500});
    return grid;
}

/** Deterministic function of the scenario only — so a merged table is
 *  reproducible no matter which worker/attempt produced each cell. */
ScenarioResult
syntheticResult(const Scenario &s)
{
    ScenarioResult r;
    r.scenario = s;
    const auto h = std::hash<std::string>{}(s.fingerprint());
    r.run.benignIpcMean =
        1.0 + static_cast<double>(h % 997) / 997.0;
    r.run.activations = h % 100000;
    r.run.mitigations = h % 321;
    r.run.coreIpc = {1.25, 0.5};
    r.run.stats.addU64("fleet.test.hash", h % 4096);
    r.run.stats.addF64("fleet.test.frac", 1.0 / 3.0);
    r.run.stats.addSeries("series.test", {0.25, 0.5, 0.75});
    r.baselineIpc = 2.0;
    r.normalized = r.run.benignIpcMean / 2.0;
    return r;
}

std::string
markerPath(const std::string &dir, const std::string &fingerprint)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zx",
                  std::hash<std::string>{}(fingerprint));
    return dir + "/marker_" + buf;
}

/** True exactly once per (dir, fingerprint) — across processes, so a
 *  respawned worker sees the attempt count of its killed predecessor. */
bool
firstTimeFor(const std::string &dir, const std::string &fingerprint)
{
    const int fd = ::open(markerPath(dir, fingerprint).c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

FleetOptions
fastOptions(const std::string &dir)
{
    FleetOptions opt;
    opt.dir = dir;
    opt.shards = 2;
    opt.backoffBaseSec = 0.01;
    opt.backoffCapSec = 0.05;
    opt.executor = [](Runner &, const Scenario &s) {
        return syntheticResult(s);
    };
    return opt;
}

/** Result-record fingerprints per shard journal, in append order. */
std::map<std::string, int>
resultCounts(const std::string &dir)
{
    std::map<std::string, int> counts;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) != 0)
            continue;
        const JournalScan scan = scanJournalFile(entry.path().string());
        for (const JournalRecord &record : scan.records)
            if (record.type == static_cast<std::uint8_t>(
                                   FleetRecord::Result))
                ++counts[decodeFleetResult(record.payload).fingerprint];
    }
    return counts;
}

std::string
renderJson(const ResultTable &table)
{
    char name[] = "/tmp/dapper_fleet_json_XXXXXX";
    const int fd = ::mkstemp(name);
    EXPECT_GE(fd, 0);
    std::FILE *out = ::fdopen(fd, "w");
    table.writeJson(out, "fleet_test");
    std::fclose(out);
    std::string bytes;
    std::FILE *in = std::fopen(name, "rb");
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        bytes.append(buf, n);
    std::fclose(in);
    std::remove(name);
    return bytes;
}

TEST(FleetUnits, BackoffIsCappedExponential)
{
    EXPECT_EQ(fleetBackoffSeconds(0, 0.25, 8.0), 0.0);
    EXPECT_EQ(fleetBackoffSeconds(1, 0.25, 8.0), 0.25);
    EXPECT_EQ(fleetBackoffSeconds(2, 0.25, 8.0), 0.5);
    EXPECT_EQ(fleetBackoffSeconds(3, 0.25, 8.0), 1.0);
    EXPECT_EQ(fleetBackoffSeconds(6, 0.25, 8.0), 8.0);  // Capped.
    EXPECT_EQ(fleetBackoffSeconds(60, 0.25, 8.0), 8.0); // No overflow.
}

TEST(FleetUnits, ShardAssignmentIsStableAndInRange)
{
    const std::size_t a = fleetShardOf("cell|alpha", 7);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(fleetShardOf("cell|alpha", 7), a);
    EXPECT_LT(a, 7u);
    // All cells of a single-shard campaign land on shard 0.
    EXPECT_EQ(fleetShardOf("cell|anything", 1), 0u);
}

TEST(FleetCodec, ResultRoundTripIsLossless)
{
    const Scenario s = syntheticGrid().expand().front();
    const ScenarioResult row = syntheticResult(s);
    const std::string payload = encodeFleetResult(row, s.fingerprint());
    const FleetCellResult back = decodeFleetResult(payload);

    EXPECT_EQ(back.fingerprint, s.fingerprint());
    EXPECT_EQ(back.label, s.labelText());
    EXPECT_EQ(back.run.coreIpc, row.run.coreIpc);
    EXPECT_EQ(back.run.benignIpcMean, row.run.benignIpcMean);
    EXPECT_EQ(back.run.activations, row.run.activations);
    EXPECT_EQ(back.run.mitigations, row.run.mitigations);
    EXPECT_TRUE(back.run.stats == row.run.stats); // Bit-exact doubles.
    EXPECT_EQ(back.baselineIpc, row.baselineIpc);
    EXPECT_EQ(back.normalized, row.normalized);

    EXPECT_THROW(decodeFleetResult(payload.substr(0, payload.size() / 2)),
                 std::runtime_error);
}

TEST(Fleet, MergedJsonIsBitIdenticalToStraightThroughRun)
{
    // Real simulator on a tiny grid: the fleet merge must render the
    // exact bytes a single-process Runner produces.
    ScenarioGrid grid(Scenario()
                          .config(fastCfg())
                          .windows(1)
                          .baseline(Baseline::NoAttack));
    grid.workloads({"429.mcf", "ycsb-a"});

    Runner runner(1);
    const std::string straight = renderJson(runner.run(grid));

    TempDir dir;
    FleetOptions opt;
    opt.dir = dir.path();
    opt.shards = 2;
    FleetCampaign campaign(opt);
    const FleetReport report = campaign.run(grid);
    ASSERT_TRUE(report.complete());
    EXPECT_EQ(report.executed, 2u);
    EXPECT_EQ(renderJson(report.table), straight);
    EXPECT_TRUE(fs::exists(dir.path() + "/manifest.json"));
}

TEST(Fleet, SigkilledWorkersAreRetriedAndNoCellRunsTwice)
{
    TempDir dir;
    TempDir markers;
    const std::vector<Scenario> cells = syntheticGrid().expand();

    // Kill an arbitrary-but-deterministic half of the cells on their
    // first attempt, at the point the cell is executing.
    std::set<std::string> killSet;
    for (std::size_t i = 0; i < cells.size(); i += 2)
        killSet.insert(cells[i].fingerprint());

    FleetOptions opt = fastOptions(dir.path());
    const std::string markerDir = markers.path();
    opt.executor = [markerDir, killSet](Runner &, const Scenario &s) {
        const std::string fp = s.fingerprint();
        if (killSet.count(fp) != 0 && firstTimeFor(markerDir, fp))
            ::raise(SIGKILL); // Abrupt worker death, no cleanup.
        return syntheticResult(s);
    };

    FleetCampaign campaign(opt);
    const FleetReport report = campaign.run(syntheticGrid());
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.completed, cells.size());
    EXPECT_EQ(report.crashes, killSet.size());
    EXPECT_GE(report.retries, killSet.size());
    EXPECT_EQ(report.duplicateResults, 0u);
    EXPECT_TRUE(report.quarantined.empty());

    // The journals prove the no-cell-twice contract: exactly one
    // result record per fingerprint across all shards.
    const auto counts = resultCounts(dir.path());
    EXPECT_EQ(counts.size(), cells.size());
    for (const auto &[fp, count] : counts)
        EXPECT_EQ(count, 1) << fp;

    // And the merged table matches a run that never saw a failure.
    TempDir cleanDir;
    FleetCampaign clean(fastOptions(cleanDir.path()));
    EXPECT_EQ(renderJson(report.table),
              renderJson(clean.run(syntheticGrid()).table));
}

TEST(Fleet, ResumeSkipsEveryCompletedCell)
{
    TempDir dir;
    FleetCampaign first(fastOptions(dir.path()));
    const FleetReport r1 = first.run(syntheticGrid());
    ASSERT_TRUE(r1.complete());
    EXPECT_EQ(r1.executed, 6u);
    EXPECT_EQ(r1.resumed, 0u);

    // Second run over the same directory: all journal, no execution.
    FleetOptions opt = fastOptions(dir.path());
    opt.executor = [](Runner &, const Scenario &) -> ScenarioResult {
        []() { FAIL() << "resume executed a completed cell"; }();
        return {};
    };
    FleetCampaign second(opt);
    const FleetReport r2 = second.run(syntheticGrid());
    EXPECT_TRUE(r2.complete());
    EXPECT_EQ(r2.resumed, 6u);
    EXPECT_EQ(r2.executed, 0u);
    EXPECT_EQ(renderJson(r1.table), renderJson(r2.table));
}

TEST(Fleet, TornJournalTailIsDiscardedOnResume)
{
    TempDir dir;
    FleetCampaign first(fastOptions(dir.path()));
    ASSERT_TRUE(first.run(syntheticGrid()).complete());

    // Simulate a SIGKILL mid-append: a half-written record at the tail
    // of one shard journal.
    const std::string victim = dir.path() + "/shard_0000.journal";
    const std::string torn =
        encodeJournalRecord(static_cast<std::uint8_t>(FleetRecord::Result),
                            "not a complete record");
    std::FILE *out = std::fopen(victim.c_str(), "ab");
    ASSERT_NE(out, nullptr);
    std::fwrite(torn.data(), 1, torn.size() / 2, out);
    std::fclose(out);

    FleetCampaign second(fastOptions(dir.path()));
    const FleetReport report = second.run(syntheticGrid());
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.resumed, 6u);
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(report.duplicateResults, 0u);
    // The recovery truncated the tail: the journal scans clean now.
    EXPECT_FALSE(scanJournalFile(victim).torn);
}

TEST(Fleet, AlwaysCrashingCellIsQuarantinedNotFatal)
{
    TempDir dir;
    const std::vector<Scenario> cells = syntheticGrid().expand();
    const std::string victimFp = cells[3].fingerprint();

    FleetOptions opt = fastOptions(dir.path());
    opt.maxAttempts = 2;
    opt.executor = [victimFp](Runner &, const Scenario &s) {
        if (s.fingerprint() == victimFp)
            throw std::runtime_error("synthetic permanent failure");
        return syntheticResult(s);
    };
    FleetCampaign campaign(opt);
    const FleetReport report = campaign.run(syntheticGrid());

    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.completed, cells.size() - 1);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0].fingerprint, victimFp);
    EXPECT_EQ(report.quarantined[0].attempts, 2u);
    EXPECT_NE(report.quarantined[0].lastError.find("permanent failure"),
              std::string::npos);
    EXPECT_EQ(report.crashes, 2u);
    // The quarantined cell is still *in* the merged table — as an
    // explicit gap row — so the grid keeps its shape and renderers can
    // show "--"/null instead of silently dropping the cell.
    ASSERT_EQ(report.table.size(), cells.size());
    std::size_t gaps = 0;
    for (const ScenarioResult &row : report.table.rows()) {
        if (!row.quarantined)
            continue;
        ++gaps;
        EXPECT_EQ(row.scenario.fingerprint(), victimFp);
        EXPECT_NE(row.quarantineError.find("permanent failure"),
                  std::string::npos);
    }
    EXPECT_EQ(gaps, 1u);
    EXPECT_TRUE(report.accounted());

    // Quarantine persists across a resume: the cell is not retried.
    FleetCampaign again(fastOptions(dir.path()));
    const FleetReport r2 = again.run(syntheticGrid());
    EXPECT_FALSE(r2.complete());
    EXPECT_EQ(r2.executed, 0u);
    EXPECT_EQ(r2.crashes, 0u);
    ASSERT_EQ(r2.quarantined.size(), 1u);
    EXPECT_EQ(r2.quarantined[0].fingerprint, victimFp);
}

TEST(Fleet, WatchdogKillsWedgedCellThenRetrySucceeds)
{
    TempDir dir;
    TempDir markers;
    const std::vector<Scenario> cells = syntheticGrid().expand();
    const std::string victimFp = cells[1].fingerprint();

    FleetOptions opt = fastOptions(dir.path());
    opt.watchdogSec = 0.3;
    const std::string markerDir = markers.path();
    opt.executor = [markerDir, victimFp](Runner &, const Scenario &s) {
        if (s.fingerprint() == victimFp &&
            firstTimeFor(markerDir, victimFp))
            for (;;) // Wedge: only the watchdog can end this attempt.
                ::usleep(50000);
        return syntheticResult(s);
    };
    FleetCampaign campaign(opt);
    const FleetReport report = campaign.run(syntheticGrid());

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.timeouts, 1u);
    EXPECT_GE(report.retries, 1u);
    EXPECT_TRUE(report.quarantined.empty());
    const auto counts = resultCounts(dir.path());
    EXPECT_EQ(counts.at(victimFp), 1);
}

TEST(Fleet, SigintDrainsGracefullyAndResumeFinishes)
{
    TempDir dir;
    FleetOptions opt = fastOptions(dir.path());
    opt.executor = [](Runner &, const Scenario &s) {
        ::usleep(200000); // Slow cells so the signal lands mid-campaign.
        return syntheticResult(s);
    };

    std::thread interrupter([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ::kill(::getpid(), SIGINT);
    });
    FleetCampaign campaign(opt);
    const FleetReport r1 = campaign.run(syntheticGrid());
    interrupter.join();

    EXPECT_TRUE(r1.drained);
    EXPECT_FALSE(r1.complete()); // 6 slow cells cannot all finish.
    EXPECT_EQ(r1.crashes, 0u);   // Drain is not a failure mode.
    // Every journaled cell is a complete record (in-flight cells were
    // allowed to finish; nothing was torn).
    for (const auto &[fp, count] : resultCounts(dir.path()))
        EXPECT_EQ(count, 1) << fp;

    FleetCampaign second(fastOptions(dir.path()));
    const FleetReport r2 = second.run(syntheticGrid());
    EXPECT_TRUE(r2.complete());
    EXPECT_EQ(r2.resumed, r1.completed);
    EXPECT_EQ(r2.executed, 6u - r1.completed);
    EXPECT_EQ(r2.duplicateResults, 0u);
}

TEST(Fleet, DifferentGridInSameDirectoryIsRejected)
{
    TempDir dir;
    FleetCampaign first(fastOptions(dir.path()));
    ASSERT_TRUE(first.run(syntheticGrid()).complete());

    ScenarioGrid other(
        Scenario().config(fastCfg()).windows(1).baseline(Baseline::Raw));
    other.workloads({"different"});
    FleetCampaign second(fastOptions(dir.path()));
    EXPECT_THROW(second.run(other), std::runtime_error);
}

} // namespace
} // namespace dapper
